#include "online/online_metrics.h"

#include <atomic>

#include "net/prometheus.h"

namespace juggler::online {

namespace {

std::atomic<bool> g_active{false};
std::atomic<uint64_t> g_ingested{0};
std::atomic<uint64_t> g_dropped{0};
std::atomic<uint64_t> g_attempted{0};
std::atomic<uint64_t> g_accepted{0};
std::atomic<uint64_t> g_rejected{0};
std::atomic<uint64_t> g_publish_failures{0};
std::atomic<uint64_t> g_rollbacks{0};
// Doubles stored as bit patterns so the globals stay lock-free atomics.
std::atomic<uint64_t> g_holdout_error_bits{0};
std::atomic<uint64_t> g_incumbent_error_bits{0};
std::atomic<uint64_t> g_model_version{0};

double LoadDouble(const std::atomic<uint64_t>& bits) {
  const uint64_t raw = bits.load(std::memory_order_relaxed);
  double value;
  static_assert(sizeof(value) == sizeof(raw));
  __builtin_memcpy(&value, &raw, sizeof(value));
  return value;
}

void StoreDouble(std::atomic<uint64_t>* bits, double value) {
  uint64_t raw;
  __builtin_memcpy(&raw, &value, sizeof(raw));
  bits->store(raw, std::memory_order_relaxed);
}

}  // namespace

void MarkOnlineActive() { g_active.store(true, std::memory_order_relaxed); }

void RecordIngested(uint64_t n) {
  g_ingested.fetch_add(n, std::memory_order_relaxed);
}

void RecordDropped(uint64_t n) {
  g_dropped.fetch_add(n, std::memory_order_relaxed);
}

void RecordRefitAttempt() {
  g_attempted.fetch_add(1, std::memory_order_relaxed);
}

void RecordRefitAccepted() {
  g_accepted.fetch_add(1, std::memory_order_relaxed);
}

void RecordRefitRejected() {
  g_rejected.fetch_add(1, std::memory_order_relaxed);
}

void RecordPublishFailure() {
  g_publish_failures.fetch_add(1, std::memory_order_relaxed);
}

void RecordRollback() { g_rollbacks.fetch_add(1, std::memory_order_relaxed); }

void SetHoldoutErrors(double candidate_error, double incumbent_error) {
  StoreDouble(&g_holdout_error_bits, candidate_error);
  StoreDouble(&g_incumbent_error_bits, incumbent_error);
}

void SetActiveModelVersion(uint64_t version) {
  g_model_version.store(version, std::memory_order_relaxed);
}

OnlineStats SnapshotOnlineStats() {
  OnlineStats stats;
  stats.active = g_active.load(std::memory_order_relaxed);
  stats.records_ingested = g_ingested.load(std::memory_order_relaxed);
  stats.records_dropped = g_dropped.load(std::memory_order_relaxed);
  stats.refits_attempted = g_attempted.load(std::memory_order_relaxed);
  stats.refits_accepted = g_accepted.load(std::memory_order_relaxed);
  stats.refits_rejected = g_rejected.load(std::memory_order_relaxed);
  stats.publish_failures = g_publish_failures.load(std::memory_order_relaxed);
  stats.rollbacks = g_rollbacks.load(std::memory_order_relaxed);
  stats.holdout_error = LoadDouble(g_holdout_error_bits);
  stats.incumbent_error = LoadDouble(g_incumbent_error_bits);
  stats.active_model_version = g_model_version.load(std::memory_order_relaxed);
  return stats;
}

void AppendOnlineMetrics(std::string* out) {
  const OnlineStats s = SnapshotOnlineStats();
  net::AppendHeader(out, "juggler_online_active", "gauge",
                    "1 when this process runs an online refit loop.");
  net::AppendSample(out, "juggler_online_active", "", "", s.active ? 1 : 0);
  net::AppendHeader(out, "juggler_online_records_ingested_total", "counter",
                    "Observations accepted into the feedback buffer.");
  net::AppendSample(out, "juggler_online_records_ingested_total", "", "",
                    static_cast<double>(s.records_ingested));
  net::AppendHeader(out, "juggler_online_records_dropped_total", "counter",
                    "Observations rejected or displaced by the ring bound.");
  net::AppendSample(out, "juggler_online_records_dropped_total", "", "",
                    static_cast<double>(s.records_dropped));
  net::AppendHeader(out, "juggler_online_refits_attempted_total", "counter",
                    "Refit attempts triggered by count/interval/error.");
  net::AppendSample(out, "juggler_online_refits_attempted_total", "", "",
                    static_cast<double>(s.refits_attempted));
  net::AppendHeader(out, "juggler_online_refits_accepted_total", "counter",
                    "Refits that beat the incumbent on holdout and published.");
  net::AppendSample(out, "juggler_online_refits_accepted_total", "", "",
                    static_cast<double>(s.refits_accepted));
  net::AppendHeader(out, "juggler_online_refits_rejected_total", "counter",
                    "Refits rejected by the holdout gate (last-good kept).");
  net::AppendSample(out, "juggler_online_refits_rejected_total", "", "",
                    static_cast<double>(s.refits_rejected));
  net::AppendHeader(out, "juggler_online_publish_failures_total", "counter",
                    "Accepted refits that failed to publish.");
  net::AppendSample(out, "juggler_online_publish_failures_total", "", "",
                    static_cast<double>(s.publish_failures));
  net::AppendHeader(out, "juggler_online_rollbacks_total", "counter",
                    "Last-good artifacts re-published by rollback.");
  net::AppendSample(out, "juggler_online_rollbacks_total", "", "",
                    static_cast<double>(s.rollbacks));
  net::AppendHeader(out, "juggler_online_holdout_error", "gauge",
                    "Candidate holdout error of the latest refit attempt.");
  net::AppendSample(out, "juggler_online_holdout_error", "", "",
                    s.holdout_error);
  net::AppendHeader(out, "juggler_online_incumbent_error", "gauge",
                    "Incumbent holdout error of the latest refit attempt.");
  net::AppendSample(out, "juggler_online_incumbent_error", "", "",
                    s.incumbent_error);
  net::AppendHeader(out, "juggler_online_model_version", "gauge",
                    "Registry version after the latest accepted publish.");
  net::AppendSample(out, "juggler_online_model_version", "", "",
                    static_cast<double>(s.active_model_version));
}

void ResetOnlineStatsForTest() {
  g_active.store(false, std::memory_order_relaxed);
  g_ingested.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
  g_attempted.store(0, std::memory_order_relaxed);
  g_accepted.store(0, std::memory_order_relaxed);
  g_rejected.store(0, std::memory_order_relaxed);
  g_publish_failures.store(0, std::memory_order_relaxed);
  g_rollbacks.store(0, std::memory_order_relaxed);
  g_holdout_error_bits.store(0, std::memory_order_relaxed);
  g_incumbent_error_bits.store(0, std::memory_order_relaxed);
  g_model_version.store(0, std::memory_order_relaxed);
}

}  // namespace juggler::online
