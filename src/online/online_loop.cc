#include "online/online_loop.h"

#include <limits>
#include <utility>

#include "common/lock_diag.h"
#include "online/online_metrics.h"

namespace juggler::online {

OnlineJuggler::OnlineJuggler(
    std::shared_ptr<service::ModelRegistry> registry,
    std::shared_ptr<service::RecommendationService> service,
    const Options& options)
    : registry_(std::move(registry)),
      service_(std::move(service)),
      options_(options),
      collector_(std::make_unique<FeedbackCollector>(options.collector)),
      engine_(options.refit),
      publisher_(std::make_unique<ModelPublisher>(registry_->directory())),
      attempts_mu_(lockdiag::RegisterLockClass("online.OnlineJuggler.attempts",
                                               lockdiag::kRankLeaf)) {
  MarkOnlineActive();
}

OnlineJuggler::~OnlineJuggler() { Stop(); }

void OnlineJuggler::Start() {
  if (running_.exchange(true)) return;
  stop_.store(false);
  thread_ = std::thread([this] { Loop(); });
}

void OnlineJuggler::Stop() {
  if (!running_.exchange(false)) return;
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
}

size_t OnlineJuggler::Observe(std::vector<Observation> batch) {
  return collector_->AddAll(std::move(batch));
}

Status OnlineJuggler::ObserveEncoded(std::string_view bytes) {
  return collector_->AddEncoded(bytes);
}

int64_t OnlineJuggler::SinceLastAttemptMs(const std::string& app) const {
  const auto now = std::chrono::steady_clock::now();
  MutexLock lock(attempts_mu_);
  auto it = last_attempt_.find(app);
  if (it == last_attempt_.end()) {
    return std::numeric_limits<int64_t>::max();
  }
  return std::chrono::duration_cast<std::chrono::milliseconds>(now -
                                                               it->second)
      .count();
}

void OnlineJuggler::SetLastAttempt(const std::string& app) {
  const auto now = std::chrono::steady_clock::now();
  MutexLock lock(attempts_mu_);
  last_attempt_[app] = now;
}

OnlineJuggler::AttemptResult OnlineJuggler::MaybeRefit(
    const std::string& app) {
  const std::vector<Observation> observations = collector_->SnapshotApp(app);
  size_t model_records = 0;
  for (const Observation& o : observations) {
    if (o.kind != ObservationKind::kServeLatency) ++model_records;
  }
  const bool triggered =
      engine_.CountTriggered(model_records) ||
      engine_.IntervalTriggered(SinceLastAttemptMs(app), model_records) ||
      engine_.ErrorTriggered(observations);
  if (!triggered) return AttemptResult::kSkipped;

  auto resolved = registry_->Resolve(app);
  if (!resolved.ok()) {
    // Observations for an app the registry does not serve: drop them so the
    // buffer cannot be wedged by a misdirected producer.
    collector_->DiscardApp(app);
    SetLastAttempt(app);
    return AttemptResult::kSkipped;
  }

  RecordRefitAttempt();
  SetLastAttempt(app);
  auto outcome = engine_.Refit(*resolved->model, observations);
  // Consume the batch either way: a retry should see fresh traffic.
  collector_->DiscardApp(app);
  if (!outcome.ok()) {
    RecordRefitRejected();
    return AttemptResult::kRejected;
  }
  SetHoldoutErrors(outcome->candidate_error, outcome->incumbent_error);
  if (!outcome->accepted) {
    RecordRefitRejected();
    return AttemptResult::kRejected;
  }
  Status published = publisher_->Publish(outcome->candidate);
  if (!published.ok()) {
    RecordPublishFailure();
    RecordRefitRejected();
    return AttemptResult::kRejected;
  }
  // The swap is on disk; make it serve. A refresh failure here leaves the
  // old snapshot in place — the next periodic refresh picks the file up.
  Status refreshed = registry_->Refresh();
  (void)refreshed;
  SetActiveModelVersion(registry_->version());
  if (service_ != nullptr) {
    // Version-keyed cache entries for the replaced model can never be
    // served again; flushing reclaims their LRU capacity immediately.
    service_->cache().FlushApp(app);
  }
  RecordRefitAccepted();
  return AttemptResult::kAccepted;
}

OnlineJuggler::CycleOutcome OnlineJuggler::RunOnce() {
  CycleOutcome cycle;
  for (const std::string& app : collector_->Apps()) {
    switch (MaybeRefit(app)) {
      case AttemptResult::kAccepted:
        ++cycle.attempted;
        ++cycle.accepted;
        break;
      case AttemptResult::kRejected:
        ++cycle.attempted;
        ++cycle.rejected;
        break;
      case AttemptResult::kSkipped:
        break;
    }
  }
  return cycle;
}

Status OnlineJuggler::Rollback(const std::string& app) {
  JUGGLER_RETURN_IF_ERROR(publisher_->Rollback(app));
  RecordRollback();
  Status refreshed = registry_->Refresh();
  if (refreshed.ok()) SetActiveModelVersion(registry_->version());
  return refreshed;
}

void OnlineJuggler::Loop() {
  constexpr int64_t kSliceMs = 20;
  int64_t since_poll_ms = options_.poll_interval_ms;  // Poll immediately.
  while (!stop_.load()) {
    if (since_poll_ms >= options_.poll_interval_ms) {
      since_poll_ms = 0;
      RunOnce();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(kSliceMs));
    since_poll_ms += kSliceMs;
  }
}

}  // namespace juggler::online
