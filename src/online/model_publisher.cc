#include "online/model_publisher.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <utility>

#include "common/lock_diag.h"
#include "core/serialization.h"
#include "service/model_registry.h"

namespace juggler::online {

namespace {

std::string ArtifactPath(const std::string& directory,
                         const std::string& app) {
  return (std::filesystem::path(directory) /
          (app + service::ModelRegistry::kModelSuffix))
      .string();
}

/// Reads a file fully; empty optional-style return via ok flag. Used to
/// stash the incumbent artifact before a swap.
bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return false;
  *out = buffer.str();
  return true;
}

}  // namespace

ModelPublisher::ModelPublisher(std::string directory)
    : directory_(std::move(directory)),
      mu_(lockdiag::RegisterLockClass("online.ModelPublisher.mu",
                                      lockdiag::kRankLeaf)) {}

Status ModelPublisher::WriteAtomic(const std::string& app,
                                   const std::string& text) {
  // The temp name must not end in ".model": the registry scan would pick a
  // half-written candidate up as a real artifact.
  const std::string temp =
      (std::filesystem::path(directory_) /
       ("." + app + ".publish.tmp." +
        std::to_string(temp_seq_.fetch_add(1, std::memory_order_relaxed))))
          .string();
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      return Status::Internal("cannot open temp artifact " + temp);
    }
    out << text;
    out.flush();
    if (!out.good()) {
      out.close();
      std::error_code discard;
      std::filesystem::remove(temp, discard);
      return Status::Internal("short write to temp artifact " + temp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(temp, ArtifactPath(directory_, app), ec);
  if (ec) {
    std::error_code discard;
    std::filesystem::remove(temp, discard);
    return Status::Internal("rename into registry failed for " + app + ": " +
                            ec.message());
  }
  return Status::OK();
}

Status ModelPublisher::Publish(const core::TrainedJuggler& model) {
  if (model.app_name().empty()) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument("model has no application name");
  }
  const std::string text = core::TrainedJugglerToString(model);
  // Self-check: a candidate that cannot round-trip must never reach disk —
  // the registry would degrade to last-good, but the swap itself should be
  // the gate, not the reader.
  auto parsed = core::TrainedJugglerFromString(text);
  if (!parsed.ok()) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::Internal("candidate artifact failed self-check: " +
                            parsed.status().message());
  }
  std::string incumbent;
  const bool have_incumbent =
      ReadFile(ArtifactPath(directory_, model.app_name()), &incumbent);
  Status written = WriteAtomic(model.app_name(), text);
  if (!written.ok()) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    return written;
  }
  if (have_incumbent) {
    MutexLock lock(mu_);
    last_good_[model.app_name()] = std::move(incumbent);
  }
  publishes_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status ModelPublisher::Rollback(const std::string& app) {
  std::string stashed;
  {
    MutexLock lock(mu_);
    auto it = last_good_.find(app);
    if (it == last_good_.end()) {
      return Status::NotFound("no last-good artifact stashed for " + app);
    }
    stashed = it->second;
  }
  Status written = WriteAtomic(app, stashed);
  if (!written.ok()) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    return written;
  }
  publishes_.fetch_add(1, std::memory_order_relaxed);
  rollbacks_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

bool ModelPublisher::HasLastGood(const std::string& app) const {
  MutexLock lock(mu_);
  return last_good_.find(app) != last_good_.end();
}

ModelPublisher::Stats ModelPublisher::GetStats() const {
  Stats stats;
  stats.publishes = publishes_.load(std::memory_order_relaxed);
  stats.rollbacks = rollbacks_.load(std::memory_order_relaxed);
  stats.failures = failures_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace juggler::online
