#include "workloads/workloads.h"

#include <algorithm>
#include <cmath>

#include "common/units.h"
#include "minispark/cache_plan.h"

namespace juggler::workloads {

using minispark::CacheOp;
using minispark::CachePlan;
using minispark::DagBuilder;
using minispark::DatasetId;

namespace {

/// HiBench text inputs weigh ~7.45 bytes per matrix value (sign, digits,
/// separators); this reproduces Table 1's input sizes from (e, f).
constexpr double kTextBytesPerValue = 7.45;

/// CPU cost coefficients, ms per matrix value. Parsing text into doubles is
/// the expensive step (~450 ns/value on the simulated cores); per-iteration
/// gradient math is an order of magnitude cheaper. These magnitudes yield
/// the paper's ~97x recompute-vs-cached-read task-time ratio.
constexpr double kParseMsPerValue = 4.5e-4;
constexpr double kMapMsPerValue = 2.0e-5;
constexpr double kGradMsPerValue = 1.0e-5;

/// HDFS block size: tasks read 64 MiB splits (SVM's 23.8 GB input yields
/// ~380 partitions, near the paper's 362).
constexpr double kSourceBlockBytes = MiB(64);

int SourcePartitions(double bytes) {
  return std::max(4, static_cast<int>(std::ceil(bytes / kSourceBlockBytes)));
}

/// Shape of one iteration's gradient job, shared by the regression-style
/// workloads: apply-weights + gradient map over `data`, a tree aggregation
/// to the driver, and `extra_narrow` cheap bookkeeping datasets to mirror
/// the real library's per-iteration RDD count (Table 1's dataset totals).
struct GradientIterSpec {
  DatasetId data = minispark::kInvalidDataset;
  double map_ms = 0.0;       ///< Total CPU of the gradient map.
  double map_bytes = 0.0;    ///< Bytes of the gradient map output.
  double exec_mem = 0.0;     ///< Execution memory per task of the map.
  double vector_bytes = 0.0; ///< Aggregated model-vector size (8*f).
  int extra_narrow = 0;
  int agg_fanin = 16;
};

void AddGradientIteration(DagBuilder* b, int iter, const GradientIterSpec& s) {
  const std::string tag = "it" + std::to_string(iter);
  DatasetId prev = b->AddNarrow(tag + "/apply-weights", {s.data}, s.map_bytes,
                                0.3 * s.map_ms);
  prev = b->AddNarrow(tag + "/gradient-map", {prev}, s.map_bytes,
                      0.7 * s.map_ms, s.exec_mem);
  for (int x = 0; x < s.extra_narrow; ++x) {
    prev = b->AddNarrow(tag + "/step" + std::to_string(x), {prev}, s.map_bytes,
                        0.02 * s.map_ms);
  }
  const int parent_parts = b->app().dataset(prev).num_partitions;
  const int fanin = std::max(1, std::min(s.agg_fanin, parent_parts));
  prev = b->AddWide(tag + "/tree-partial", {prev},
                    s.vector_bytes * static_cast<double>(fanin),
                    0.05 * s.map_ms, fanin);
  prev = b->AddWide(tag + "/tree-final", {prev}, s.vector_bytes,
                    0.01 * s.map_ms, 1);
  b->AddJob(tag + "/gradient", prev, s.vector_bytes);
}

}  // namespace

Application MakeLinearRegression(const AppParams& params) {
  const double ef = params.examples * params.features;
  DagBuilder b("lir");
  b.SetParams(params);

  // Prep: the HiBench LIR developers cache nothing; iterations re-read the
  // parsed input (Figure 1's motivating defect).
  const DatasetId src = b.AddSource("input", kTextBytesPerValue * ef,
                                    SourcePartitions(kTextBytesPerValue * ef));
  const DatasetId parsed =
      b.AddNarrow("parsed-points", {src}, 8.0 * ef, kParseMsPerValue * ef);
  const DatasetId count_child =
      b.AddNarrow("count-probe", {parsed}, 1.0, 1e-6 * ef);
  // A smaller derived dataset reused by the evaluation jobs (the paper's
  // LIR caches two datasets in SCHEDULE #2).
  const DatasetId holdout =
      b.AddNarrow("holdout-features", {parsed}, 4.0 * ef, kMapMsPerValue * ef);
  b.AddJob("count", count_child, 64.0);

  // Summary-statistics job over the holdout features.
  {
    const DatasetId stats_map = b.AddNarrow(
        "stats-map", {holdout}, 64.0 * params.features, 0.5 * kMapMsPerValue * ef);
    const DatasetId stats_agg = b.AddWide("stats-agg", {stats_map},
                                          8.0 * params.features, 1e3, 1);
    b.AddJob("feature-stats", stats_agg, 8.0 * params.features);
  }

  // Evaluation datasets are created before the per-iteration datasets so
  // that every dataset with a stable role keeps a stable id across
  // iteration counts (training runs vary the iteration count; Juggler's
  // models are keyed by dataset id). The eval *jobs* still run last. Each
  // job has its own prediction tail (computed once), so the only shared
  // evaluation dataset is the sizeable holdout itself.
  std::vector<DatasetId> metrics;
  for (int k = 0; k < 3; ++k) {
    const DatasetId predictions =
        b.AddNarrow("metric" + std::to_string(k) + "-predictions", {holdout},
                    16.0 * params.examples, 0.5 * kMapMsPerValue * ef);
    metrics.push_back(b.AddWide("metric" + std::to_string(k), {predictions},
                                64.0, 1.0, 1));
  }

  // Iterative SGD jobs directly over the parsed input.
  GradientIterSpec iter;
  iter.data = parsed;
  iter.map_ms = kGradMsPerValue * ef;
  iter.map_bytes = 8.0 * params.features *
                   b.app().dataset(parsed).num_partitions;
  iter.exec_mem = MiB(250);
  iter.vector_bytes = 8.0 * params.features;
  iter.extra_narrow = 6;  // LIR's library code creates ~10 RDDs an iteration.
  for (int i = 0; i < params.iterations; ++i) AddGradientIteration(&b, i, iter);

  // Three evaluation jobs over the holdout features, sharing prediction and
  // residual datasets (shared tails make them intermediates).
  for (int k = 0; k < 3; ++k) {
    b.AddJob("eval-metric" + std::to_string(k), metrics[static_cast<size_t>(k)],
             64.0);
  }

  b.SetDefaultPlan(CachePlan{});  // HiBench LIR caches nothing.
  return std::move(b).Build();
}

Application MakeLogisticRegression(const AppParams& params) {
  const double ef = params.examples * params.features;
  DagBuilder b("lor");
  b.SetParams(params);

  const DatasetId src = b.AddSource("input", kTextBytesPerValue * ef,
                                    SourcePartitions(kTextBytesPerValue * ef));
  const DatasetId parsed =                                        // D1
      b.AddNarrow("parsed-points", {src}, 8.0 * ef, kParseMsPerValue * ef);
  const DatasetId labeled =                                       // D2
      b.AddNarrow("labeled-points", {parsed}, 6.0 * ef, kMapMsPerValue * ef);

  // Job 0: count over the labeled points (materializes the HiBench cache).
  const DatasetId count_child = b.AddNarrow("count-probe", {labeled}, 1.0, 1e-6 * ef);
  b.AddJob("count", count_child, 64.0);

  // Jobs 1-2: MLlib's MultivariateOnlineSummarizer passes (mean, std), each
  // a map + tree aggregation over the labeled points.
  DatasetId last_stats = minispark::kInvalidDataset;
  for (int k = 0; k < 2; ++k) {
    const std::string tag = k == 0 ? "summary-mean" : "summary-std";
    const DatasetId m = b.AddNarrow(tag + "-map", {labeled},
                                    64.0 * params.features,
                                    0.5 * kMapMsPerValue * ef, MiB(64));
    const DatasetId p = b.AddWide(tag + "-partial", {m}, 8.0 * params.features * 8,
                                  1e2, 8);
    const DatasetId a = b.AddWide(tag, {p}, 8.0 * params.features, 10.0, 1);
    b.AddJob(tag, a, 8.0 * params.features);
    last_stats = a;
  }
  (void)last_stats;

  // D11-analog: the standardized instances MLlib caches internally; every
  // LBFGS iteration reads it.
  // Same size as the labeled points (the paper's D2 and D11 weigh 45.961
  // and 45.975 MB in the sample run) — which is what makes the p(2)-only
  // and p(1) p(2) schedules equal-cost and triggers the dedup.
  const DatasetId scaled =
      b.AddNarrow("std-instances", {labeled}, 6.0 * ef, 1.5 * kMapMsPerValue * ef);

  // Evaluation datasets created before the iteration datasets (stable ids);
  // the evaluation job itself runs after the iterations.
  const DatasetId pred = b.AddNarrow("predictions", {parsed},
                                     16.0 * params.examples, kMapMsPerValue * ef);
  const DatasetId accuracy = b.AddWide("accuracy", {pred}, 64.0, 1.0, 1);

  GradientIterSpec iter;
  iter.data = scaled;
  iter.map_ms = kGradMsPerValue * ef;
  iter.map_bytes = 8.0 * params.features * b.app().dataset(scaled).num_partitions;
  iter.exec_mem = MiB(300);
  iter.vector_bytes = 8.0 * params.features;
  iter.extra_narrow = 0;  // LOR's iteration creates ~4 RDDs.
  for (int i = 0; i < params.iterations; ++i) AddGradientIteration(&b, i, iter);

  // Final evaluation over the raw parsed data (not the standardized copy).
  b.AddJob("evaluate", accuracy, 64.0);

  CachePlan hibench;
  hibench.ops = {CacheOp::Persist(labeled), CacheOp::Persist(scaled)};
  b.SetDefaultPlan(hibench);
  return std::move(b).Build();
}

Application MakePca(const AppParams& params) {
  const double ef = params.examples * params.features;
  DagBuilder b("pca");
  b.SetParams(params);

  const DatasetId src = b.AddSource("input", kTextBytesPerValue * ef,
                                    SourcePartitions(kTextBytesPerValue * ef));
  const DatasetId parsed =                                        // D1
      b.AddNarrow("parsed-rows", {src}, 8.0 * ef, kParseMsPerValue * ef);
  const DatasetId normalized =                                    // D2
      b.AddNarrow("normalized-rows", {parsed}, 8.0 * ef, kMapMsPerValue * ef);

  // Early jobs give D1 and D2 children besides the main chain (so neither is
  // a single child when Algorithm 1 builds schedules).
  const DatasetId count_child = b.AddNarrow("count-probe", {parsed}, 1.0, 1e-7 * ef);
  b.AddJob("count", count_child, 64.0);
  {
    const DatasetId mean_map = b.AddNarrow("col-means-map", {normalized},
                                           8.0 * params.features * 4, 0.3 * kMapMsPerValue * ef);
    const DatasetId mean = b.AddWide("col-means", {mean_map}, 8.0 * params.features, 1.0, 1);
    b.AddJob("col-means", mean, 8.0 * params.features);
  }

  // Conversion chain down to the row-matrix representation the power
  // iterations consume; a mid-chain dataset is probed by one extra job so
  // the workload has five intermediates like Table 1.
  DatasetId chain = normalized;
  const DatasetId vectors = b.AddNarrow("dense-vectors", {chain}, 8.0 * ef,
                                        0.5 * kMapMsPerValue * ef);
  const DatasetId probe = b.AddNarrow("dim-probe", {vectors}, 1.0, 1e-7 * ef);
  b.AddJob("dimensions", probe, 64.0);
  DatasetId matrix = vectors;
  for (int k = 0; k < 3; ++k) {
    matrix = b.AddNarrow("row-matrix-" + std::to_string(k), {matrix}, 8.0 * ef,
                         0.1 * kMapMsPerValue * ef);
  }
  // `matrix` is the D13-analog every power iteration multiplies against.

  // Power-iteration jobs: a long per-iteration chain of small datasets (the
  // real PCA creates ~18 RDDs per iteration — hence Table 1's 1833).
  for (int i = 0; i < params.iterations; ++i) {
    const std::string tag = "pow" + std::to_string(i);
    DatasetId prev = b.AddNarrow(tag + "/multiply", {matrix}, 8.0 * params.examples,
                                 0.5 * kGradMsPerValue * ef, MiB(50));
    for (int x = 0; x < 13; ++x) {
      prev = b.AddNarrow(tag + "/op" + std::to_string(x), {prev},
                         8.0 * params.examples, 0.01 * kGradMsPerValue * ef);
    }
    prev = b.AddWide(tag + "/partial", {prev}, 8.0 * params.features * 4, 1.0, 4);
    prev = b.AddWide(tag + "/combine", {prev}, 8.0 * params.features, 1.0, 1);
    const DatasetId normalized_v = b.AddNarrow(tag + "/normalize", {prev},
                                               8.0 * params.features, 0.1);
    b.AddJob(tag, normalized_v, 8.0 * params.features);
  }

  CachePlan hibench;
  hibench.ops = {CacheOp::Persist(normalized)};
  b.SetDefaultPlan(hibench);
  return std::move(b).Build();
}

Application MakeRandomForest(const AppParams& params) {
  const double ef = params.examples * params.features;
  DagBuilder b("rfc");
  b.SetParams(params);

  const DatasetId src = b.AddSource("input", kTextBytesPerValue * ef,
                                    SourcePartitions(kTextBytesPerValue * ef));
  const DatasetId parsed =                                        // D1
      b.AddNarrow("parsed-points", {src}, 8.0 * ef, kParseMsPerValue * ef);

  const DatasetId count_child = b.AddNarrow("count-probe", {parsed}, 1.0, 1e-6 * ef);
  b.AddJob("count", count_child, 64.0);

  // Metadata pass: per-feature bins/statistics, aggregated to the driver
  // and broadcast (as MLlib does) — the metadata datasets are computed once
  // and are not caching candidates.
  {
    const DatasetId meta_map = b.AddNarrow("metadata-map", {parsed},
                                           64.0 * params.features,
                                           0.8 * kMapMsPerValue * ef, MiB(128));
    const DatasetId metadata = b.AddWide("metadata", {meta_map},
                                         24.0 * params.features, 1e2, 8);
    const DatasetId splits = b.AddNarrow("feature-splits", {metadata},
                                         16.0 * params.features, 10.0);
    b.AddJob("metadata", splits, 8.0 * params.features);
  }

  // Tree points and bagged points; MLlib caches the bagged points (D12).
  // The tree points are also read by the final evaluation, making them an
  // intermediate dataset in their own right (the paper's schedule #1
  // caches them alone).
  const DatasetId tree_points =                                   // D11-analog
      b.AddNarrow("tree-points", {parsed}, 9.0 * ef,
                  1.2 * kMapMsPerValue * ef);
  const DatasetId bagged =                                        // D12-analog
      b.AddNarrow("bagged-points", {tree_points}, 10.0 * ef,
                  0.8 * kMapMsPerValue * ef);

  // Out-of-bag evaluation datasets (stable ids before iteration datasets).
  const DatasetId oob_pred = b.AddNarrow("oob-predictions", {tree_points},
                                         16.0 * params.examples,
                                         kMapMsPerValue * ef);
  const DatasetId oob_error = b.AddWide("oob-error", {oob_pred}, 64.0, 1.0, 1);

  // One job per tree level: collect split statistics over the bagged
  // points, aggregate in two shuffle rounds (treeAggregate with depth 2)
  // and derive the chosen splits — four RDDs per level, as in MLlib.
  for (int i = 0; i < params.iterations; ++i) {
    const std::string tag = "level" + std::to_string(i);
    const DatasetId split_map = b.AddNarrow(tag + "/split-stats", {bagged},
                                            128.0 * params.features,
                                            3.0 * kGradMsPerValue * ef, MiB(400));
    const DatasetId partial = b.AddWide(tag + "/partial-splits", {split_map},
                                        96.0 * params.features, 1e2, 8);
    const DatasetId split_agg = b.AddWide(tag + "/best-splits", {partial},
                                          64.0 * params.features, 1e2, 1);
    const DatasetId chosen = b.AddNarrow(tag + "/chosen", {split_agg},
                                         8.0 * params.features, 1.0);
    b.AddJob(tag, chosen, 8.0 * params.features);
  }

  b.AddJob("evaluate", oob_error, 64.0);

  CachePlan hibench;
  hibench.ops = {CacheOp::Persist(bagged)};
  b.SetDefaultPlan(hibench);
  return std::move(b).Build();
}

Application MakeSvm(const AppParams& params) {
  const double ef = params.examples * params.features;
  DagBuilder b("svm");
  b.SetParams(params);

  const DatasetId src = b.AddSource("input", kTextBytesPerValue * ef,
                                    SourcePartitions(kTextBytesPerValue * ef));
  const DatasetId parsed =                                        // D1
      b.AddNarrow("parsed-points", {src}, 12.8 * ef, kParseMsPerValue * ef);
  // D2-analog: the 35.7 GB labeled dataset HiBench caches (11.16 B/value at
  // the paper's 40k x 80k); slightly smaller than its parent (dropped
  // columns), which is what puts it ahead of the parent on benefit-cost
  // ratio, as in the paper.
  const DatasetId labeled =
      b.AddNarrow("labeled-points", {parsed}, 11.96 * ef, kMapMsPerValue * ef);

  const DatasetId count_child = b.AddNarrow("count-probe", {labeled}, 1.0, 1e-6 * ef);
  b.AddJob("count", count_child, 64.0);

  // Feature-scaler statistics pass.
  {
    const DatasetId m = b.AddNarrow("scaler-map", {labeled}, 64.0 * params.features,
                                    0.5 * kMapMsPerValue * ef, MiB(64));
    const DatasetId a = b.AddWide("scaler-stats", {m}, 8.0 * params.features, 1e2, 1);
    b.AddJob("scaler", a, 8.0 * params.features);
  }

  // D6-analog: MLlib's scaled instances, read by each SGD iteration. Kept
  // slightly below the labeled dataset so schedule #2 (both cached) still
  // fits the 12-machine ceiling, as in the paper's Figure 9e.
  const DatasetId scaled =
      b.AddNarrow("scaled-instances", {labeled}, 10.5 * ef,
                  1.5 * kMapMsPerValue * ef);

  // Evaluation datasets created before iteration datasets (stable ids); the
  // two eval jobs run after the iterations, each with its own prediction
  // tail (each computed once — not caching candidates).
  std::vector<DatasetId> metrics;
  for (int k = 0; k < 2; ++k) {
    const DatasetId pred =
        b.AddNarrow("metric" + std::to_string(k) + "-predictions", {labeled},
                    16.0 * params.examples, kMapMsPerValue * ef);
    metrics.push_back(b.AddWide("metric" + std::to_string(k), {pred}, 64.0,
                                1.0, 1));
  }

  GradientIterSpec iter;
  iter.data = scaled;
  iter.map_ms = kGradMsPerValue * ef;
  iter.map_bytes = 8.0 * params.features * b.app().dataset(scaled).num_partitions;
  iter.exec_mem = MiB(350);  // ~20 % of M at the paper's 12 GB executors.
  iter.vector_bytes = 8.0 * params.features;
  iter.extra_narrow = 1;  // SVM's iteration creates ~5 RDDs.
  for (int i = 0; i < params.iterations; ++i) AddGradientIteration(&b, i, iter);

  for (int k = 0; k < 2; ++k) {
    b.AddJob("eval-metric" + std::to_string(k), metrics[static_cast<size_t>(k)],
             64.0);
  }

  CachePlan hibench;
  hibench.ops = {CacheOp::Persist(labeled)};
  b.SetDefaultPlan(hibench);
  return std::move(b).Build();
}

const std::vector<Workload>& AllWorkloads() {
  static const std::vector<Workload> kWorkloads{
      {"lir", AppParams{40e3, 120e3, 10}, MakeLinearRegression},
      {"lor", AppParams{70e3, 50e3, 50}, MakeLogisticRegression},
      {"pca", AppParams{6e3, 5e3, 100}, MakePca},
      {"rfc", AppParams{100e3, 40e3, 3}, MakeRandomForest},
      {"svm", AppParams{40e3, 80e3, 100}, MakeSvm},
  };
  return kWorkloads;
}

StatusOr<Workload> GetWorkload(const std::string& name) {
  for (const Workload& w : AllWorkloads()) {
    if (w.name == name) return w;
  }
  return Status::NotFound("unknown workload: " + name);
}

Application MakeRandomApplication(Rng* rng, const RandomAppOptions& options) {
  DagBuilder b("random");
  b.SetParams(AppParams{1e3, 1e2, 1});

  std::vector<DatasetId> pool;
  const DatasetId src = b.AddSource("src", rng->Uniform(MiB(1), options.max_dataset_bytes),
                                    static_cast<int>(rng->UniformInt(1, 16)));
  pool.push_back(src);

  for (int i = 0; i < options.num_shared_datasets; ++i) {
    const DatasetId parent = pool[rng->UniformInt(pool.size())];
    const double bytes = rng->Uniform(MiB(1), options.max_dataset_bytes);
    const double compute = rng->Uniform(10.0, 5e4);
    DatasetId id;
    if (rng->Bernoulli(options.wide_probability)) {
      id = b.AddWide("shared" + std::to_string(i), {parent}, bytes, compute,
                     static_cast<int>(rng->UniformInt(1, 8)));
    } else {
      id = b.AddNarrow("shared" + std::to_string(i), {parent}, bytes, compute);
    }
    pool.push_back(id);
  }

  for (int j = 0; j < options.num_jobs; ++j) {
    DatasetId prev = pool[rng->UniformInt(pool.size())];
    const int chain = static_cast<int>(rng->UniformInt(
        1, std::max(1, options.max_chain_per_job)));
    for (int k = 0; k < chain; ++k) {
      const double bytes = rng->Uniform(1024.0, MiB(64));
      const double compute = rng->Uniform(1.0, 1e4);
      std::string name = "j";
      name += std::to_string(j);
      name += 'c';
      name += std::to_string(k);
      if (rng->Bernoulli(options.wide_probability)) {
        prev = b.AddWide(name, {prev}, bytes, compute,
                         static_cast<int>(rng->UniformInt(1, 8)));
      } else {
        prev = b.AddNarrow(name, {prev}, bytes, compute);
      }
    }
    b.AddJob("job" + std::to_string(j), prev, 64.0);
  }
  return std::move(b).Build();
}

}  // namespace juggler::workloads
