#ifndef JUGGLER_WORKLOADS_WORKLOADS_H_
#define JUGGLER_WORKLOADS_WORKLOADS_H_

#include <functional>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "minispark/application.h"

namespace juggler::workloads {

using minispark::Application;
using minispark::AppParams;

/// \brief One of the five evaluated HiBench-like applications (paper
/// Table 1): a named factory that instantiates the application DAG for
/// concrete parameters, plus the paper's evaluation parameters.
struct Workload {
  std::string name;
  /// The paper's actual-run parameters (Table 1).
  AppParams paper_params;
  /// Builds the application for arbitrary parameters. The returned
  /// Application carries the HiBench developer-cached datasets as its
  /// default plan.
  std::function<Application(const AppParams&)> make;
};

/// The five evaluated applications: lir, lor, pca, rfc, svm.
const std::vector<Workload>& AllWorkloads();

/// Looks a workload up by name.
[[nodiscard]] StatusOr<Workload> GetWorkload(const std::string& name);

/// \brief Linear Regression (HiBench LIR). The developers cache nothing; the
/// large parsed input is re-read in every iteration (paper Figure 1).
Application MakeLinearRegression(const AppParams& params);

/// \brief Logistic Regression (HiBench LOR). Developers cache the labeled
/// points and MLlib internally caches the standardized instances (the
/// paper's Figure 4 running example).
Application MakeLogisticRegression(const AppParams& params);

/// \brief Principal Components Analysis (HiBench PCA). Tiny datasets, many
/// short jobs; all cached data fits on a single machine.
Application MakePca(const AppParams& params);

/// \brief Random Forest Classifier (HiBench RFC). Few iterations; MLlib
/// caches the bagged tree points.
Application MakeRandomForest(const AppParams& params);

/// \brief Support Vector Machine (HiBench SVM). Developers cache one large
/// labeled dataset (the paper's Figure 2 motivating example).
Application MakeSvm(const AppParams& params);

/// \brief Options for the synthetic random-DAG generator used by property
/// tests: arbitrary but valid applications with shared intermediates.
struct RandomAppOptions {
  int num_shared_datasets = 8;   ///< Prep-chain datasets jobs may reuse.
  int num_jobs = 6;
  int max_chain_per_job = 4;     ///< Private narrow/wide tail per job.
  double max_dataset_bytes = 512.0 * 1024 * 1024;
  double wide_probability = 0.25;
};

/// Generates a random valid application (Validate() always passes).
Application MakeRandomApplication(Rng* rng, const RandomAppOptions& options);

}  // namespace juggler::workloads

#endif  // JUGGLER_WORKLOADS_WORKLOADS_H_
