#!/usr/bin/env bash
# Closed-loop soak of the online adaptation path: trains a tiny registry,
# boots juggler_serve with --online, streams observations that follow a law
# the offline-trained model has never seen, and asserts that the loop
# completes at least one accepted refit — collector -> refit -> holdout gate
# -> publish -> registry refresh — without a restart, while the recommend
# path keeps answering. Run it against a TSan build to make the soak a race
# detector as well.
#
#   tools/smoke/online_smoke.sh [path-to-juggler_serve] [soak-seconds]
#
# Exits non-zero on the first failed check. Used by the online-soak CI job.
set -u -o pipefail

SERVE="${1:-build/examples/juggler_serve}"
SOAK_SECONDS="${2:-60}"
WORKDIR="$(mktemp -d)"
MODELS="$WORKDIR/models"
LOG="$WORKDIR/server.log"
SERVER_PID=""

fail() {
  echo "FAIL: $*" >&2
  [ -f "$LOG" ] && { echo "--- server log ---" >&2; cat "$LOG" >&2; }
  exit 1
}

cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

[ -x "$SERVE" ] || fail "juggler_serve not found at $SERVE"

# --- Train the registry (REPL mode exits cleanly on EOF).
echo "== training the registry =="
"$SERVE" "$MODELS" --train-fast --stdin \
  <<< 'svm 12000 3000' >/dev/null || fail "training run exited non-zero"
[ -f "$MODELS/svm.model" ] || fail "training left no svm.model artifact"

# --- Serve with the feedback loop on. A short refit interval so the soak
# window fits many attempt opportunities.
echo "== serving with --online =="
"$SERVE" "$MODELS" --port 0 --workers 2 \
  --online --online-min-records 24 --online-interval-ms 1000 \
  >"$LOG" 2>&1 &
SERVER_PID=$!

PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/.*listening on http:\/\/[0-9.]*:\([0-9]*\).*/\1/p' "$LOG")"
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || fail "server died during startup"
  sleep 0.1
done
[ -n "$PORT" ] || fail "server never logged its port"
BASE="http://127.0.0.1:$PORT"
echo "server up on $BASE"
grep -q "online adaptation on" "$LOG" || fail "server did not enable --online"

BODY='{"app":"svm","params":{"examples":12000,"features":3000,"iterations":5}}'

# Discover the model's schedule ids from a real recommendation: refit
# observations must target schedules the incumbent actually has.
RESPONSE="$(curl -s -X POST -d "$BODY" "$BASE/v1/recommend")"
SCHEDULES="$(grep -o '"schedule_id":[0-9]*' <<< "$RESPONSE" \
  | grep -o '[0-9]*' | sort -un)"
[ -n "$SCHEDULES" ] || fail "recommend returned no schedule ids: $RESPONSE"
echo "observed schedule ids:" $SCHEDULES

# One observation batch: run times following value = e*f/2000 ms for every
# schedule — a clean linear law, far from what offline training fit, so a
# refit against it beats the incumbent on held-out traffic and is accepted.
batch_json() {
  local items="" e f v sched
  for sched in $SCHEDULES; do
    for e in 4000 8000 12000 16000 20000 24000; do
      for f in 1000 2000 4000; do
        v=$((e * f / 2000))
        items+="{\"kind\":\"run_time\",\"app\":\"svm\",\"target\":$sched,"
        items+="\"params\":{\"examples\":$e,\"features\":$f,\"iterations\":5},"
        items+="\"value\":$v},"
      done
    done
  done
  echo "[${items%,}]"
}
BATCH="$(batch_json)"

metric() {
  curl -s "$BASE/metrics" | sed -n "s/^$1 \([0-9.]*\)$/\1/p"
}

# --- The soak loop: keep feeding observations (every refit attempt consumes
# the buffer) and polling /metrics until a refit lands or time runs out.
echo "== soaking for up to ${SOAK_SECONDS}s =="
ACCEPTED=0
DEADLINE=$((SECONDS + SOAK_SECONDS))
while [ "$SECONDS" -lt "$DEADLINE" ]; do
  curl -s -o /dev/null -X POST -d "$BATCH" "$BASE/v1/observe" \
    || fail "observe POST failed"
  # The serving path must stay responsive throughout the soak.
  curl -s -X POST -d "$BODY" "$BASE/v1/recommend" | grep -q '"svm"' \
    || fail "recommend stopped answering mid-soak"
  ACCEPTED="$(metric juggler_online_refits_accepted_total)"
  [ -n "$ACCEPTED" ] || fail "/metrics lost juggler_online_refits_accepted_total"
  if [ "${ACCEPTED%%.*}" -ge 1 ]; then
    break
  fi
  sleep 1
done
[ "${ACCEPTED%%.*}" -ge 1 ] \
  || fail "no accepted refit within ${SOAK_SECONDS}s (accepted=$ACCEPTED)"
echo "accepted refits: $ACCEPTED"

# The publish bumped the registry mid-serve: recommendations now come from a
# new model version, and the online series agree.
VERSION="$(metric juggler_online_model_version)"
[ -n "$VERSION" ] && [ "${VERSION%%.*}" -ge 2 ] \
  || fail "registry version did not advance past the refit (v=$VERSION)"
curl -s -X POST -d "$BODY" "$BASE/v1/recommend" \
  | grep -q "\"model_version\":${VERSION%%.*}" \
  || fail "recommend does not serve the refit model version $VERSION"
# (Capture first: `curl | grep -q` would SIGPIPE curl under pipefail.)
METRICS="$(curl -s "$BASE/metrics")"
grep -q '^juggler_online_active 1$' <<< "$METRICS" \
  || fail "juggler_online_active is not 1"
grep -q '^juggler_online_publish_failures_total 0$' <<< "$METRICS" \
  || fail "the soak saw publish failures"

# --- Clean shutdown: SIGTERM prints the online stats summary and exits 0.
echo "== shutdown =="
kill -TERM "$SERVER_PID"
for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
  fail "server ignored SIGTERM"
fi
wait "$SERVER_PID"
STATUS=$?
SERVER_PID=""
[ "$STATUS" -eq 0 ] || fail "server exited with status $STATUS"
grep -q "online stats:" "$LOG" || fail "shutdown printed no online stats"
grep -q "shutting down" "$LOG" || true

echo "OK"
