#!/usr/bin/env bash
# Multi-process smoke test of the horizontal serving tier: trains a tiny
# registry, boots two --role=shard backends and a --role=router front end as
# separate processes, exercises the API with curl, then kill -9's the shard
# that served the traffic and verifies the router reroutes every subsequent
# request with zero client-visible failures.
#
#   tools/smoke/cluster_smoke.sh [path-to-juggler_serve]
#
# Exits non-zero on the first failed check. Used by the cluster-smoke CI job.
set -u -o pipefail

SERVE="${1:-build/examples/juggler_serve}"
WORKDIR="$(mktemp -d)"
MODELS="$WORKDIR/models"
PIDS=()

fail() {
  echo "FAIL: $*" >&2
  for log in "$WORKDIR"/*.log; do
    [ -f "$log" ] && { echo "--- $log ---" >&2; cat "$log" >&2; }
  done
  exit 1
}

cleanup() {
  for pid in ${PIDS[@]+"${PIDS[@]}"}; do
    kill -9 "$pid" 2>/dev/null
  done
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

[ -x "$SERVE" ] || fail "juggler_serve not found at $SERVE"

# --- Train the registry once (REPL mode exits cleanly on stdin EOF).
echo "== training registry =="
"$SERVE" "$MODELS" --train-fast --stdin </dev/null >/dev/null \
  || fail "training run exited non-zero"
ls "$MODELS"/*.model >/dev/null 2>&1 || fail "no model artifacts trained"

# --- Boot two shards on ephemeral RPC ports. The processes must be started
# in this shell (not a command-substitution subshell) so `wait` can reap
# them for their exit codes later.
SHARD_PORT=""
scrape_shard_port() {
  local name="$1" pid="$2"
  SHARD_PORT=""
  for _ in $(seq 1 100); do
    SHARD_PORT="$(sed -n \
      's/.*shard listening on rpc:\/\/[0-9.]*:\([0-9]*\).*/\1/p' \
      "$WORKDIR/$name.log")"
    [ -n "$SHARD_PORT" ] && break
    kill -0 "$pid" 2>/dev/null || fail "$name died during startup"
    sleep 0.1
  done
  [ -n "$SHARD_PORT" ] || fail "$name never logged its port"
}

echo "== booting 2 shards + router =="
"$SERVE" "$MODELS" --role shard --port 0 >"$WORKDIR/shard1.log" 2>&1 &
SHARD1_PID=$!
PIDS+=("$SHARD1_PID")
"$SERVE" "$MODELS" --role shard --port 0 >"$WORKDIR/shard2.log" 2>&1 &
SHARD2_PID=$!
PIDS+=("$SHARD2_PID")
scrape_shard_port shard1 "$SHARD1_PID"
SHARD1_PORT="$SHARD_PORT"
scrape_shard_port shard2 "$SHARD2_PID"
SHARD2_PORT="$SHARD_PORT"
echo "shard1 pid=$SHARD1_PID rpc port=$SHARD1_PORT"
echo "shard2 pid=$SHARD2_PID rpc port=$SHARD2_PORT"

# --- Boot the router over both shards.
"$SERVE" "$MODELS" --role router \
  --shards "127.0.0.1:$SHARD1_PORT,127.0.0.1:$SHARD2_PORT" \
  --port 0 --probe-interval-ms 2000 >"$WORKDIR/router.log" 2>&1 &
ROUTER_PID=$!
PIDS+=("$ROUTER_PID")
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/.*listening on http:\/\/[0-9.]*:\([0-9]*\).*/\1/p' \
    "$WORKDIR/router.log")"
  [ -n "$PORT" ] && break
  kill -0 "$ROUTER_PID" 2>/dev/null || fail "router died during startup"
  sleep 0.1
done
[ -n "$PORT" ] || fail "router never logged its port"
BASE="http://127.0.0.1:$PORT"
echo "router up on $BASE"

BODY='{"app":"svm","params":{"examples":12000,"features":3000,"iterations":5}}'

# --- The standalone API surface, served through the cluster.
[ "$(curl -s "$BASE/healthz")" = "ok" ] || fail "/healthz did not answer ok"

curl -s "$BASE/v1/apps" | grep -q '"svm"' || fail "/v1/apps is missing svm"

curl -s -X POST -d "$BODY" "$BASE/v1/recommend" \
  | grep -q '"cache_hit":false' || fail "cold recommend was not a miss"
curl -s -X POST -d "$BODY" "$BASE/v1/recommend" \
  | grep -q '"cache_hit":true' || fail "warm recommend was not a cache hit"

curl -s -X POST "$BASE/v1/reload" | grep -q '"shards"' \
  || fail "/v1/reload returned no per-shard results"

METRICS="$(curl -s "$BASE/metrics")"
grep -q 'juggler_router_shard_healthy{shard="127.0.0.1:' <<< "$METRICS" \
  || fail "/metrics is missing the per-shard health series"
grep -q 'juggler_router_healthy_shards 2' <<< "$METRICS" \
  || fail "/metrics does not show 2 healthy shards"

# --- Chaos: kill -9 the shard that owns the warm key, mid-conversation.
# /v1/apps and /v1/reload also bump requests_total, so the owner is the
# shard whose counter moves across a burst of warm recommends, not simply
# the first nonzero one.
shard_requests() {
  curl -s "$BASE/metrics" \
    | sed -n "s/^juggler_router_requests_total{shard=\"$1\"} \([0-9]*\)$/\1/p"
}
ADDR1="127.0.0.1:$SHARD1_PORT"
ADDR2="127.0.0.1:$SHARD2_PORT"
BEFORE1="$(shard_requests "$ADDR1")"
BEFORE2="$(shard_requests "$ADDR2")"
for _ in $(seq 1 5); do
  curl -s -o /dev/null -X POST -d "$BODY" "$BASE/v1/recommend"
done
AFTER1="$(shard_requests "$ADDR1")"
AFTER2="$(shard_requests "$ADDR2")"
OWNER_ADDR=""
[ "$AFTER1" -gt "$BEFORE1" ] && OWNER_ADDR="$ADDR1"
[ "$AFTER2" -gt "$BEFORE2" ] && OWNER_ADDR="$ADDR2"
[ -n "$OWNER_ADDR" ] || fail "could not identify the owning shard"
OWNER_PORT="${OWNER_ADDR##*:}"
if [ "$OWNER_PORT" = "$SHARD1_PORT" ]; then
  OWNER_PID=$SHARD1_PID
else
  OWNER_PID=$SHARD2_PID
fi
echo "== killing owner shard $OWNER_ADDR (pid $OWNER_PID) =="
kill -9 "$OWNER_PID" || fail "could not kill the owner shard"

# Every request after the kill must still answer 200: the first one eats the
# transport failure and reroutes, the rest route to the survivor.
for i in $(seq 1 30); do
  CODE="$(curl -s -o /dev/null -w '%{http_code}' --max-time 10 \
    -X POST -d "$BODY" "$BASE/v1/recommend")"
  [ "$CODE" = "200" ] || fail "request $i after shard kill got $CODE, not 200"
done
echo "30/30 requests answered 200 after the kill"

# The router noticed: at least one reroute (the probe cadence is a slow 2s
# precisely so the first post-kill request hits the dead owner and has to
# fail over, rather than the prober winning the race), and the health gauge
# drops once the prober does catch up.
METRICS="$(curl -s "$BASE/metrics")"
REROUTES="$(sed -n 's/^juggler_router_reroutes_total \([0-9]*\)$/\1/p' \
  <<< "$METRICS")"
[ -n "$REROUTES" ] && [ "$REROUTES" -ge 1 ] \
  || fail "reroutes_total is '$REROUTES', expected >= 1"
HEALTHY=""
for _ in $(seq 1 100); do
  HEALTHY="$(curl -s "$BASE/metrics" \
    | sed -n 's/^juggler_router_healthy_shards \([0-9]*\)$/\1/p')"
  [ "$HEALTHY" = "1" ] && break
  sleep 0.1
done
[ "$HEALTHY" = "1" ] || fail "healthy_shards is '$HEALTHY', expected 1"
[ "$(curl -s "$BASE/healthz")" = "ok" ] \
  || fail "/healthz went red with one shard still up"

# --- Clean shutdown: SIGTERM exits 0 and prints the stats summaries.
echo "== shutdown =="
kill -TERM "$ROUTER_PID"
for _ in $(seq 1 100); do
  kill -0 "$ROUTER_PID" 2>/dev/null || break
  sleep 0.1
done
kill -0 "$ROUTER_PID" 2>/dev/null && fail "router did not exit on SIGTERM"
wait "$ROUTER_PID"
RC=$?
[ "$RC" -eq 0 ] || fail "router exited with code $RC on SIGTERM"
grep -q "router stats: reroutes" "$WORKDIR/router.log" \
  || fail "router printed no stats summary"
grep -Eq "shard 127.0.0.1:$OWNER_PORT: down" "$WORKDIR/router.log" \
  || fail "router summary does not show the killed shard as down"

if [ "$OWNER_PID" = "$SHARD1_PID" ]; then
  SURVIVOR_PID=$SHARD2_PID; SURVIVOR_LOG="$WORKDIR/shard2.log"
else
  SURVIVOR_PID=$SHARD1_PID; SURVIVOR_LOG="$WORKDIR/shard1.log"
fi
kill -TERM "$SURVIVOR_PID"
for _ in $(seq 1 100); do
  kill -0 "$SURVIVOR_PID" 2>/dev/null || break
  sleep 0.1
done
kill -0 "$SURVIVOR_PID" 2>/dev/null && fail "shard did not exit on SIGTERM"
wait "$SURVIVOR_PID"
RC=$?
[ "$RC" -eq 0 ] || fail "shard exited with code $RC on SIGTERM"
grep -q "rpc stats:" "$SURVIVOR_LOG" || fail "shard printed no rpc stats"
grep -q "registry:" "$SURVIVOR_LOG" || fail "shard printed no registry stats"

PIDS=()
echo "PASS"
