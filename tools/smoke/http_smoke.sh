#!/usr/bin/env bash
# End-to-end smoke test of the network serving path: trains a tiny registry,
# boots juggler_serve as an HTTP server, exercises the API with curl
# (including the saturated-queue 503 contract), and verifies clean shutdown
# on SIGTERM and on REPL EOF.
#
#   tools/smoke/http_smoke.sh [path-to-juggler_serve]
#
# Exits non-zero on the first failed check. Used by the http-smoke CI job.
set -u -o pipefail

SERVE="${1:-build/examples/juggler_serve}"
WORKDIR="$(mktemp -d)"
MODELS="$WORKDIR/models"
LOG="$WORKDIR/server.log"
SERVER_PID=""

fail() {
  echo "FAIL: $*" >&2
  [ -f "$LOG" ] && { echo "--- server log ---" >&2; cat "$LOG" >&2; }
  exit 1
}

cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

[ -x "$SERVE" ] || fail "juggler_serve not found at $SERVE"

# --- REPL mode: EOF on stdin is a clean exit that prints the stats summary.
echo "== REPL smoke (trains the registry) =="
REPL_OUT="$("$SERVE" "$MODELS" --train-fast --stdin \
  <<< 'svm 12000 3000')" || fail "REPL run exited non-zero"
grep -q "svm" <<< "$REPL_OUT" || fail "REPL did not answer the svm question"
grep -q "requests" <<< "$REPL_OUT" || fail "REPL exit printed no stats summary"

# --- Server mode: deliberately tiny capacity so saturation is reachable.
echo "== HTTP smoke =="
"$SERVE" "$MODELS" --port 0 --workers 1 --queue-capacity 1 \
  --eval-delay-ms 400 --handler-threads 8 >"$LOG" 2>&1 &
SERVER_PID=$!

PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/.*listening on http:\/\/[0-9.]*:\([0-9]*\).*/\1/p' "$LOG")"
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || fail "server died during startup"
  sleep 0.1
done
[ -n "$PORT" ] || fail "server never logged its port"
BASE="http://127.0.0.1:$PORT"
echo "server up on $BASE"

BODY='{"app":"svm","params":{"examples":12000,"features":3000,"iterations":5}}'

[ "$(curl -s "$BASE/healthz")" = "ok" ] || fail "/healthz did not answer ok"

curl -s "$BASE/v1/apps" | grep -q '"svm"' || fail "/v1/apps is missing svm"

# Cold ask evaluates the model (slowed by --eval-delay-ms)...
curl -s -X POST -d "$BODY" "$BASE/v1/recommend" \
  | grep -q '"cache_hit":false' || fail "cold recommend was not a miss"
# ...and the repeat is a warm hit answered on the event loop.
curl -s -X POST -d "$BODY" "$BASE/v1/recommend" \
  | grep -q '"cache_hit":true' || fail "warm recommend was not a cache hit"

curl -s "$BASE/metrics" | grep -q 'juggler_requests_total{app="svm"}' \
  || fail "/metrics is missing the per-app series"

# Saturation: 1 worker + 1 queue slot + 400ms evaluations. 8 distinct cold
# questions in parallel must produce at least one immediate 503 — and every
# request must get *some* HTTP answer (shed at the edge, never hung/dropped).
echo "== saturation =="
CODES=""
CURL_PIDS=()
for i in $(seq 1 8); do
  Q="{\"app\":\"svm\",\"params\":{\"examples\":$((20000 + i)),\"features\":4000}}"
  curl -s -o /dev/null -w '%{http_code}\n' --max-time 20 \
    -X POST -d "$Q" "$BASE/v1/recommend" >>"$WORKDIR/codes.txt" &
  CURL_PIDS+=("$!")
done
wait "${CURL_PIDS[@]}"  # NOT a bare `wait` — that would block on the server.
CODES="$(cat "$WORKDIR/codes.txt")"
[ "$(wc -l < "$WORKDIR/codes.txt")" -eq 8 ] || fail "a request got no answer"
grep -q '^503$' <<< "$CODES" || fail "saturation produced no 503 (codes: $(tr '\n' ' ' <<< "$CODES"))"
grep -Eqv '^(200|503)$' <<< "$CODES" && fail "unexpected status (codes: $(tr '\n' ' ' <<< "$CODES"))"
echo "status codes: $(sort "$WORKDIR/codes.txt" | uniq -c | tr -s ' \n' ' ')"

# --- Clean shutdown: SIGTERM exits 0 and prints both stats summaries.
kill -TERM "$SERVER_PID"
for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
  fail "server did not exit within 10s of SIGTERM"
fi
wait "$SERVER_PID"
RC=$?
SERVER_PID=""
[ "$RC" -eq 0 ] || fail "server exited with code $RC on SIGTERM"
grep -q "shutting down" "$LOG" || fail "no shutdown log line"
grep -q "http stats:" "$LOG" || fail "no http stats line on shutdown"
grep -Eq '^ +svm +requests' "$LOG" || fail "no per-app stats line on shutdown"

echo "PASS"
