// juggler_soak: the standing soak/chaos gauntlet. Launches the full serving
// stack in-process (standalone HttpRecommendServer, or router + N JRPC
// shards), replays a parameterized traffic trace against the HTTP edge —
// diurnal/flash shapes, zipfian app popularity with rotation, slowloris
// clients, malformed bytes interleaved with valid requests — while a chaos
// schedule from the same trace kills/restarts/pauses shards, corrupts and
// restores model artifacts, and publishes refits mid-flight. Throughout the
// run it checks SLO invariants: every valid request gets a well-formed
// response (2xx or clean 503 + Retry-After — never a hang, reset, or
// malformed body), per-phase error budgets and p99 bounds hold, /metrics
// counters stay monotone and internally consistent, and the stack exits
// clean with no leaked connections.
//
//   juggler_soak --trace tools/soak/traces/short_gauntlet.trace
//       [--mode cluster|standalone] [--shards N] [--online] [--seed N]
//       [--time-scale X] [--workers N] [--model-dir DIR] [--corpus DIR]
//       [--report SOAK_report.json] [--bench BENCH_soak.json]
//       [--qps-floor R]
//
// Emits SOAK_report.json (per-phase outcomes + verdicts + chaos log) and
// BENCH_soak.json (sustained-throughput floor, skipped under sanitizers).
// Exit code 0 iff every invariant held.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/router.h"
#include "cluster/shard_server.h"
#include "core/juggler.h"
#include "core/serialization.h"
#include "loadgen/generator.h"
#include "loadgen/replay.h"
#include "loadgen/slo.h"
#include "loadgen/trace.h"
#include "net/http_recommend_server.h"
#include "net/json.h"
#include "online/online_loop.h"
#include "service/model_registry.h"
#include "service/recommendation_service.h"
#include "workloads/workloads.h"

using namespace juggler;  // NOLINT

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitizerBuild = true;
#else
constexpr bool kSanitizerBuild = false;
#endif

struct Flags {
  std::string trace;
  std::string mode = "cluster";
  int shards = 2;
  bool online = false;
  uint64_t seed = 1;
  double time_scale = 1.0;
  int workers = 8;
  std::string model_dir;
  std::string corpus;
  std::string report = "SOAK_report.json";
  std::string bench = "BENCH_soak.json";
  double qps_floor = 20.0;
};

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--trace") {
      flags->trace = value();
    } else if (arg == "--mode") {
      flags->mode = value();
    } else if (arg == "--shards") {
      flags->shards = std::atoi(value());
    } else if (arg == "--online") {
      flags->online = true;
    } else if (arg == "--seed") {
      flags->seed = static_cast<uint64_t>(std::atoll(value()));
    } else if (arg == "--time-scale") {
      flags->time_scale = std::atof(value());
    } else if (arg == "--workers") {
      flags->workers = std::atoi(value());
    } else if (arg == "--model-dir") {
      flags->model_dir = value();
    } else if (arg == "--corpus") {
      flags->corpus = value();
    } else if (arg == "--report") {
      flags->report = value();
    } else if (arg == "--bench") {
      flags->bench = value();
    } else if (arg == "--qps-floor") {
      flags->qps_floor = std::atof(value());
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  if (flags->trace.empty()) {
    std::fprintf(stderr, "usage: juggler_soak --trace FILE [options]\n");
    return false;
  }
  if (flags->mode != "cluster" && flags->mode != "standalone") {
    std::fprintf(stderr, "--mode must be cluster or standalone\n");
    return false;
  }
  if (flags->shards < 1 || flags->workers < 1 || flags->time_scale <= 0.0) {
    std::fprintf(stderr, "--shards/--workers/--time-scale out of range\n");
    return false;
  }
  return true;
}

/// Same training recipe and artifact layout as bench_cluster, so runs share
/// the cached registry directory.
void EnsureModels(const fs::path& dir) {
  fs::create_directories(dir);
  for (const auto& w : workloads::AllWorkloads()) {
    const fs::path path =
        dir / (w.name + service::ModelRegistry::kModelSuffix);
    if (fs::exists(path)) continue;
    core::JugglerConfig config;
    config.time_grid = core::TrainingGrid{
        {0.4 * w.paper_params.examples, 0.7 * w.paper_params.examples,
         w.paper_params.examples},
        {0.4 * w.paper_params.features, 0.7 * w.paper_params.features,
         w.paper_params.features},
        w.paper_params.iterations};
    config.memory_reference = w.paper_params;
    config.run_options.noise_sigma = 0.0;
    config.run_options.straggler_prob = 0.0;
    std::printf("  training %-6s -> %s\n", w.name.c_str(), path.c_str());
    auto training = core::TrainJuggler(w.name, w.make, config);
    if (!training.ok()) {
      std::fprintf(stderr, "training %s failed: %s\n", w.name.c_str(),
                   training.status().ToString().c_str());
      std::exit(1);
    }
    std::ofstream out(path);
    if (auto st = core::SaveTrainedJuggler(training->trained, out);
        !st.ok() || !out) {
      std::fprintf(stderr, "saving %s failed\n", path.c_str());
      std::exit(1);
    }
  }
}

std::shared_ptr<online::OnlineJuggler> MakeOnline(
    const std::shared_ptr<service::ModelRegistry>& registry,
    const std::shared_ptr<service::RecommendationService>& service) {
  online::OnlineJuggler::Options options;
  options.poll_interval_ms = 250;
  options.refit.min_records = 16;
  options.refit.interval_ms = 1'000;
  auto loop =
      std::make_shared<online::OnlineJuggler>(registry, service, options);
  loop->Start();
  return loop;
}

/// One JRPC shard with its own lazy registry, service, and (optionally)
/// online loop. Kill/restart replaces only the server; state survives the
/// way a crashed-and-restarted process with a warm disk cache would not —
/// which is fine: the invariants under test live at the router and HTTP
/// edge, not in the shard's memory.
struct ShardState {
  std::shared_ptr<service::ModelRegistry> registry;
  std::shared_ptr<service::RecommendationService> service;
  std::shared_ptr<online::OnlineJuggler> online;
  std::unique_ptr<cluster::ShardServer> server;
  uint16_t port = 0;
  bool up = false;
};

std::unique_ptr<cluster::ShardServer> MakeShardServer(ShardState* shard,
                                                      uint16_t port) {
  cluster::ShardServer::Options options;
  options.rpc.port = port;
  options.rpc.num_handler_threads = 4;
  options.online = shard->online;
  return std::make_unique<cluster::ShardServer>(shard->registry,
                                                shard->service, options);
}

/// The serving stack under test, behind one interface so the chaos executor
/// does not care which mode runs.
class Stack {
 public:
  virtual ~Stack() = default;
  virtual uint16_t http_port() const = 0;
  virtual bool KillShard(size_t index) = 0;
  virtual bool RestartShard(size_t index) = 0;
  virtual void ReloadModels() = 0;
  virtual void Stop() = 0;
};

class ClusterStack : public Stack {
 public:
  ClusterStack(const fs::path& model_dir, int shard_count, bool online) {
    for (int i = 0; i < shard_count; ++i) {
      auto shard = std::make_unique<ShardState>();
      service::ModelRegistry::Options ropts;
      ropts.lazy_load = true;
      shard->registry = std::make_shared<service::ModelRegistry>(
          model_dir.string(), ropts);
      if (auto st = shard->registry->Refresh(); !st.ok()) {
        std::fprintf(stderr, "shard registry: %s\n", st.ToString().c_str());
        std::exit(1);
      }
      service::RecommendationService::Options sopts;
      sopts.num_workers = 2;
      sopts.queue_capacity = 4'096;
      sopts.cache.capacity = 1'024;
      shard->service = std::make_shared<service::RecommendationService>(
          shard->registry, sopts);
      if (online) shard->online = MakeOnline(shard->registry, shard->service);
      shard->server = MakeShardServer(shard.get(), 0);
      if (auto st = shard->server->Start(); !st.ok()) {
        std::fprintf(stderr, "shard start: %s\n", st.ToString().c_str());
        std::exit(1);
      }
      shard->port = shard->server->port();
      shard->up = true;
      shards_.push_back(std::move(shard));
    }
    cluster::Router::Options ropts;
    for (const auto& shard : shards_) {
      ropts.shards.push_back("127.0.0.1:" + std::to_string(shard->port));
    }
    ropts.probe_interval_ms = 100;  // React to chaos quickly.
    auto created = cluster::Router::Create(ropts);
    if (!created.ok()) {
      std::fprintf(stderr, "router: %s\n",
                   created.status().ToString().c_str());
      std::exit(1);
    }
    router_ = std::move(created).value();
    if (auto st = router_->Start(); !st.ok()) {
      std::fprintf(stderr, "router start: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    cluster::RouterHttpServer::Options hopts;
    hopts.http.port = 0;
    hopts.http.num_handler_threads = 8;
    hopts.http.max_connections = 512;
    hopts.http.header_read_timeout_ms = 1'000;  // Reap slowloris fast.
    hopts.http.write_timeout_ms = 5'000;
    http_ = std::make_unique<cluster::RouterHttpServer>(router_.get(), hopts);
    if (auto st = http_->Start(); !st.ok()) {
      std::fprintf(stderr, "router http start: %s\n", st.ToString().c_str());
      std::exit(1);
    }
  }

  uint16_t http_port() const override { return http_->port(); }

  bool KillShard(size_t index) override {
    if (index >= shards_.size() || !shards_[index]->up) return false;
    shards_[index]->server->Stop();
    shards_[index]->server.reset();
    shards_[index]->up = false;
    return true;
  }

  bool RestartShard(size_t index) override {
    if (index >= shards_.size() || shards_[index]->up) return false;
    ShardState* shard = shards_[index].get();
    shard->server = MakeShardServer(shard, shard->port);
    if (auto st = shard->server->Start(); !st.ok()) {
      std::fprintf(stderr, "shard restart: %s\n", st.ToString().c_str());
      return false;
    }
    shard->up = true;
    return true;
  }

  void ReloadModels() override {
    for (const auto& result :
         router_->Broadcast(rpc::FrameType::kReload, "")) {
      (void)result;  // Best effort: downed shards are expected to fail.
    }
  }

  void Stop() override {
    if (http_) http_->Stop();
    if (router_) router_->Stop();
    for (auto& shard : shards_) {
      if (shard->up) {
        shard->server->Stop();
        shard->up = false;
      }
      if (shard->online) shard->online->Stop();
    }
  }

  const cluster::Router& router() const { return *router_; }

 private:
  std::vector<std::unique_ptr<ShardState>> shards_;
  std::unique_ptr<cluster::Router> router_;
  std::unique_ptr<cluster::RouterHttpServer> http_;
};

class StandaloneStack : public Stack {
 public:
  StandaloneStack(const fs::path& model_dir, bool online) {
    registry_ =
        std::make_shared<service::ModelRegistry>(model_dir.string());
    if (auto st = registry_->Refresh(); !st.ok()) {
      std::fprintf(stderr, "registry: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    service::RecommendationService::Options sopts;
    sopts.num_workers = 4;
    sopts.queue_capacity = 4'096;
    sopts.cache.capacity = 1'024;
    service_ = std::make_shared<service::RecommendationService>(registry_,
                                                                sopts);
    if (online) online_ = MakeOnline(registry_, service_);
    net::HttpRecommendServer::Options hopts;
    hopts.http.port = 0;
    hopts.http.num_handler_threads = 8;
    hopts.http.max_connections = 512;
    hopts.http.header_read_timeout_ms = 1'000;
    hopts.http.write_timeout_ms = 5'000;
    hopts.online = online_;
    server_ = std::make_unique<net::HttpRecommendServer>(registry_, service_,
                                                         hopts);
    if (auto st = server_->Start(); !st.ok()) {
      std::fprintf(stderr, "http start: %s\n", st.ToString().c_str());
      std::exit(1);
    }
  }

  uint16_t http_port() const override { return server_->port(); }
  bool KillShard(size_t) override { return false; }     // No shards.
  bool RestartShard(size_t) override { return false; }  // No shards.

  void ReloadModels() override {
    if (auto st = registry_->Refresh(); !st.ok()) {
      // Corrupt artifacts are the point of the exercise: the registry keeps
      // serving the last good snapshot and reports the error here.
      std::printf("  reload kept last-good: %s\n", st.ToString().c_str());
    }
  }

  void Stop() override {
    if (server_) server_->Stop();
    if (online_) online_->Stop();
  }

 private:
  std::shared_ptr<service::ModelRegistry> registry_;
  std::shared_ptr<service::RecommendationService> service_;
  std::shared_ptr<online::OnlineJuggler> online_;
  std::unique_ptr<net::HttpRecommendServer> server_;
};

struct ChaosLogEntry {
  int64_t at_ms = 0;
  std::string action;
  std::string detail;
  bool ok = true;
};

/// Executes the trace's chaos schedule against the stack. Corrupt/restore
/// operate on the model artifact files; every action ends with a reload so
/// the stack notices.
class ChaosExecutor {
 public:
  ChaosExecutor(Stack* stack, const fs::path& model_dir,
                std::vector<loadgen::ChaosEvent> events, double time_scale)
      : stack_(stack),
        model_dir_(model_dir),
        events_(std::move(events)),
        time_scale_(time_scale) {
    std::stable_sort(events_.begin(), events_.end(),
                     [](const loadgen::ChaosEvent& a,
                        const loadgen::ChaosEvent& b) {
                       return a.at_ms < b.at_ms;
                     });
  }

  void Run(Clock::time_point start) {
    for (const loadgen::ChaosEvent& event : events_) {
      std::this_thread::sleep_until(
          start + std::chrono::milliseconds(static_cast<int64_t>(
                      static_cast<double>(event.at_ms) * time_scale_)));
      Execute(event);
    }
  }

  const std::vector<ChaosLogEntry>& log() const { return log_; }

 private:
  fs::path ModelPath(const std::string& app) const {
    return model_dir_ / (app + service::ModelRegistry::kModelSuffix);
  }

  void Execute(const loadgen::ChaosEvent& event) {
    ChaosLogEntry entry;
    entry.at_ms = event.at_ms;
    entry.action = loadgen::ChaosActionName(event.action);
    switch (event.action) {
      case loadgen::ChaosAction::kKillShard:
        entry.ok = stack_->KillShard(static_cast<size_t>(event.shard));
        entry.detail = "shard " + std::to_string(event.shard);
        break;
      case loadgen::ChaosAction::kRestartShard:
        entry.ok = stack_->RestartShard(static_cast<size_t>(event.shard));
        entry.detail = "shard " + std::to_string(event.shard);
        break;
      case loadgen::ChaosAction::kPauseShard: {
        entry.detail = "shard " + std::to_string(event.shard) + " for " +
                       std::to_string(event.pause_ms) + "ms";
        entry.ok = stack_->KillShard(static_cast<size_t>(event.shard));
        if (entry.ok) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(static_cast<int64_t>(
                  static_cast<double>(event.pause_ms) * time_scale_)));
          entry.ok = stack_->RestartShard(static_cast<size_t>(event.shard));
        }
        break;
      }
      case loadgen::ChaosAction::kCorruptModel: {
        const fs::path path = ModelPath(event.app);
        std::ifstream in(path, std::ios::binary);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        if (!in || buffer.str().empty()) {
          entry.ok = false;
          entry.detail = "cannot read " + path.string();
          break;
        }
        saved_[event.app] = buffer.str();
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << "CORRUPT GARBAGE: not a model artifact\n";
        entry.ok = static_cast<bool>(out);
        entry.detail = path.string();
        out.close();
        stack_->ReloadModels();
        break;
      }
      case loadgen::ChaosAction::kRestoreModel: {
        const auto it = saved_.find(event.app);
        if (it == saved_.end()) {
          entry.ok = false;
          entry.detail = "nothing saved for " + event.app;
          break;
        }
        std::ofstream out(ModelPath(event.app),
                          std::ios::binary | std::ios::trunc);
        out << it->second;
        entry.ok = static_cast<bool>(out);
        entry.detail = ModelPath(event.app).string();
        out.close();
        stack_->ReloadModels();
        break;
      }
      case loadgen::ChaosAction::kPublishRefit: {
        // Rewrite the artifact byte-for-byte: a fingerprint (mtime) change
        // the registry absorbs as a fresh publish, mid-serve.
        const fs::path path = ModelPath(event.app);
        std::ifstream in(path, std::ios::binary);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        if (!in || buffer.str().empty()) {
          entry.ok = false;
          entry.detail = "cannot read " + path.string();
          break;
        }
        in.close();
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << buffer.str();
        entry.ok = static_cast<bool>(out);
        entry.detail = path.string();
        out.close();
        stack_->ReloadModels();
        break;
      }
    }
    std::printf("  chaos @%lldms %s (%s)%s\n",
                static_cast<long long>(entry.at_ms), entry.action.c_str(),
                entry.detail.c_str(), entry.ok ? "" : " FAILED");
    std::fflush(stdout);
    log_.push_back(std::move(entry));
  }

  Stack* stack_;
  const fs::path model_dir_;
  std::vector<loadgen::ChaosEvent> events_;
  const double time_scale_;
  std::map<std::string, std::string> saved_;
  std::vector<ChaosLogEntry> log_;
};

std::vector<std::string> LoadCorpus(const fs::path& dir) {
  std::vector<std::string> pool;
  if (!fs::is_directory(dir)) return pool;
  std::vector<fs::path> files;
  for (const auto& file : fs::directory_iterator(dir)) {
    if (file.is_regular_file()) files.push_back(file.path());
  }
  std::sort(files.begin(), files.end());  // Deterministic pool order.
  for (const fs::path& path : files) {
    if (pool.size() >= 64) break;
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string bytes = buffer.str();
    if (bytes.empty() || bytes.size() > 4'096) continue;
    pool.push_back(std::move(bytes));
  }
  return pool;
}

net::Json VerdictJson(const loadgen::Verdict& verdict) {
  net::Json out = net::Json::Obj();
  out.Set("name", net::Json::Str(verdict.name))
      .Set("pass", net::Json::Bool(verdict.pass))
      .Set("detail", net::Json::Str(verdict.detail));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;

  auto trace = loadgen::LoadTraceFile(flags.trace);
  if (!trace.ok()) {
    std::fprintf(stderr, "%s\n", trace.status().ToString().c_str());
    return 2;
  }

  const fs::path model_dir =
      flags.model_dir.empty()
          ? fs::temp_directory_path() / "juggler_soak_registry"
          : fs::path(flags.model_dir);
  std::printf("== juggler_soak: %s | mode %s | seed %llu | scale %.2g ==\n",
              flags.trace.c_str(), flags.mode.c_str(),
              static_cast<unsigned long long>(flags.seed), flags.time_scale);
  EnsureModels(model_dir);

  loadgen::GeneratorOptions gen_options;
  gen_options.seed = flags.seed;
  gen_options.default_apps.clear();
  for (const auto& w : workloads::AllWorkloads()) {
    gen_options.default_apps.push_back(w.name);
  }
  fs::path corpus_dir = flags.corpus.empty()
                            ? fs::path(JUGGLER_SOURCE_DIR) / "fuzz" /
                                  "corpus" / "http_parser"
                            : fs::path(flags.corpus);
  gen_options.malformed_pool = LoadCorpus(corpus_dir);
  std::printf("malformed pool: %zu corpus samples%s\n",
              gen_options.malformed_pool.size(),
              gen_options.malformed_pool.empty() ? " (using built-ins)" : "");
  const std::vector<loadgen::LoadEvent> events =
      loadgen::GenerateEvents(*trace, gen_options);
  std::printf("trace: %zu phases, %zu events, %lldms (x%.2g wall)\n",
              trace->phases.size(), events.size(),
              static_cast<long long>(trace->TotalDurationMs()),
              flags.time_scale);

  std::unique_ptr<Stack> stack;
  ClusterStack* cluster_stack = nullptr;
  if (flags.mode == "cluster") {
    auto owned = std::make_unique<ClusterStack>(model_dir, flags.shards,
                                                flags.online);
    cluster_stack = owned.get();
    stack = std::move(owned);
  } else {
    stack = std::make_unique<StandaloneStack>(model_dir, flags.online);
  }
  const uint16_t port = stack->http_port();
  std::printf("stack up on 127.0.0.1:%u (%s, %d shard(s), online %s)\n",
              port, flags.mode.c_str(),
              flags.mode == "cluster" ? flags.shards : 0,
              flags.online ? "on" : "off");
  std::fflush(stdout);

  // Replay + chaos + metrics polling share one start instant so trace
  // offsets line up across all three.
  const auto start = Clock::now() + std::chrono::milliseconds(100);

  ChaosExecutor chaos(stack.get(), model_dir, trace->chaos,
                      flags.time_scale);
  std::thread chaos_thread([&] { chaos.Run(start); });

  loadgen::MetricsMonitor monitor;
  std::atomic<bool> stop_polling{false};
  std::thread metrics_thread([&] {
    while (!stop_polling.load(std::memory_order_relaxed)) {
      auto scrape = loadgen::HttpFetch("127.0.0.1", port, "GET", "/metrics",
                                       "", 2'000);
      if (scrape.ok() && scrape->status == 200) {
        monitor.Observe("edge", loadgen::ParsePrometheusText(scrape->body));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(500));
    }
  });

  loadgen::ReplayOptions replay_options;
  replay_options.port = port;
  replay_options.workers = flags.workers;
  replay_options.time_scale = flags.time_scale;
  auto replayed = loadgen::RunReplay(*trace, events, replay_options);
  chaos_thread.join();
  stop_polling.store(true, std::memory_order_relaxed);
  metrics_thread.join();
  if (!replayed.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 replayed.status().ToString().c_str());
    stack->Stop();
    return 1;
  }
  const std::vector<loadgen::PhaseResult>& phases = *replayed;

  // Drain check: with the replay's connections closed, the edge server's
  // active-connection gauge must return to (at most) the scrape itself.
  bool drained = false;
  for (int i = 0; i < 50 && !drained; ++i) {
    auto scrape = loadgen::HttpFetch("127.0.0.1", port, "GET", "/metrics",
                                     "", 2'000);
    if (scrape.ok() && scrape->status == 200) {
      const auto samples = loadgen::ParsePrometheusText(scrape->body);
      const auto it = samples.find("juggler_http_connections_active");
      drained = it != samples.end() && it->second <= 1.0;
    }
    if (!drained) std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  // Verdicts: per-phase SLOs + the continuous metrics invariants.
  const double latency_slack = kSanitizerBuild ? 10.0 : 1.0;
  bool pass = drained;
  std::vector<loadgen::Verdict> all_verdicts;
  net::Json phases_json = net::Json::Arr();
  uint64_t total_sent = 0;
  uint64_t total_ok = 0;
  double total_duration_s = 0.0;
  for (size_t i = 0; i < phases.size(); ++i) {
    const loadgen::PhaseResult& result = phases[i];
    total_sent += result.sent;
    total_ok += result.ok2xx;
    total_duration_s += result.duration_s;
    net::Json verdicts_json = net::Json::Arr();
    for (const loadgen::Verdict& verdict :
         loadgen::CheckPhase(trace->phases[i], result, latency_slack)) {
      pass = pass && verdict.pass;
      all_verdicts.push_back(verdict);
      verdicts_json.Append(VerdictJson(verdict));
    }
    net::Json phase_json = net::Json::Obj();
    phase_json.Set("name", net::Json::Str(result.name))
        .Set("duration_s", net::Json::Number(result.duration_s))
        .Set("sent", net::Json::Number(static_cast<double>(result.sent)))
        .Set("ok2xx", net::Json::Number(static_cast<double>(result.ok2xx)))
        .Set("shed503",
             net::Json::Number(static_cast<double>(result.shed503)))
        .Set("retry_after_missing",
             net::Json::Number(
                 static_cast<double>(result.retry_after_missing)))
        .Set("errors4xx",
             net::Json::Number(static_cast<double>(result.errors4xx)))
        .Set("errors5xx",
             net::Json::Number(static_cast<double>(result.errors5xx)))
        .Set("transport_errors",
             net::Json::Number(static_cast<double>(result.transport_errors)))
        .Set("malformed_responses",
             net::Json::Number(
                 static_cast<double>(result.malformed_responses)))
        .Set("malformed_sent",
             net::Json::Number(static_cast<double>(result.malformed_sent)))
        .Set("slow_sent",
             net::Json::Number(static_cast<double>(result.slow_sent)))
        .Set("slow_reaped",
             net::Json::Number(static_cast<double>(result.slow_reaped)))
        .Set("slow_hung",
             net::Json::Number(static_cast<double>(result.slow_hung)))
        .Set("qps", net::Json::Number(result.Qps()))
        .Set("error_ratio", net::Json::Number(result.ErrorRatio()))
        .Set("p99_ms", net::Json::Number(result.P99Ms()))
        .Set("verdicts", std::move(verdicts_json));
    phases_json.Append(std::move(phase_json));
  }
  net::Json metrics_json = net::Json::Arr();
  for (const loadgen::Verdict& verdict : monitor.Verdicts()) {
    pass = pass && verdict.pass;
    all_verdicts.push_back(verdict);
    metrics_json.Append(VerdictJson(verdict));
  }
  for (const ChaosLogEntry& entry : chaos.log()) {
    pass = pass && entry.ok;
  }

  const double sustained_qps =
      total_duration_s > 0.0
          ? static_cast<double>(total_ok) / total_duration_s
          : 0.0;
  const bool check_floor = !kSanitizerBuild && flags.qps_floor > 0.0;
  const bool floor_ok = !check_floor || sustained_qps >= flags.qps_floor;
  pass = pass && floor_ok;

  // SOAK_report.json: the full picture one run produced.
  {
    net::Json chaos_json = net::Json::Arr();
    for (const ChaosLogEntry& entry : chaos.log()) {
      net::Json item = net::Json::Obj();
      item.Set("at_ms",
               net::Json::Number(static_cast<double>(entry.at_ms)))
          .Set("action", net::Json::Str(entry.action))
          .Set("detail", net::Json::Str(entry.detail))
          .Set("ok", net::Json::Bool(entry.ok));
      chaos_json.Append(std::move(item));
    }
    net::Json report = net::Json::Obj();
    report.Set("trace", net::Json::Str(flags.trace))
        .Set("mode", net::Json::Str(flags.mode))
        .Set("shards", net::Json::Number(
                           flags.mode == "cluster" ? flags.shards : 0))
        .Set("online", net::Json::Bool(flags.online))
        .Set("seed",
             net::Json::Number(static_cast<double>(flags.seed)))
        .Set("time_scale", net::Json::Number(flags.time_scale))
        .Set("sanitizer", net::Json::Bool(kSanitizerBuild))
        .Set("phases", std::move(phases_json))
        .Set("metrics_invariants", std::move(metrics_json))
        .Set("metrics_scrapes",
             net::Json::Number(static_cast<double>(monitor.scrapes())))
        .Set("chaos", std::move(chaos_json))
        .Set("connections_drained", net::Json::Bool(drained))
        .Set("pass", net::Json::Bool(pass));
    std::ofstream out(flags.report);
    out << report.Dump() << "\n";
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", flags.report.c_str());
      return 1;
    }
    std::printf("wrote %s\n", flags.report.c_str());
  }

  // BENCH_soak.json: the sustained-throughput trajectory.
  {
    net::Json bench = net::Json::Obj();
    bench.Set("bench", net::Json::Str("soak"))
        .Set("mode", net::Json::Str(flags.mode))
        .Set("requests",
             net::Json::Number(static_cast<double>(total_sent)))
        .Set("ok2xx", net::Json::Number(static_cast<double>(total_ok)))
        .Set("duration_s", net::Json::Number(total_duration_s))
        .Set("sustained_req_per_s", net::Json::Number(sustained_qps))
        .Set("floor_req_per_s", net::Json::Number(flags.qps_floor))
        .Set("floor_checked", net::Json::Bool(check_floor));
    std::ofstream out(flags.bench);
    out << bench.Dump() << "\n";
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", flags.bench.c_str());
      return 1;
    }
    std::printf("wrote %s\n", flags.bench.c_str());
  }

  if (cluster_stack != nullptr) {
    std::printf("router: reroutes %llu | warm hints %llu (%llu keys)\n",
                static_cast<unsigned long long>(
                    cluster_stack->router().reroutes()),
                static_cast<unsigned long long>(
                    cluster_stack->router().warm_hints()),
                static_cast<unsigned long long>(
                    cluster_stack->router().warm_keys()));
  }
  stack->Stop();

  for (const loadgen::Verdict& verdict : all_verdicts) {
    std::printf("  [%s] %s — %s\n", verdict.pass ? "PASS" : "FAIL",
                verdict.name.c_str(), verdict.detail.c_str());
  }
  if (!drained) std::printf("  [FAIL] connections did not drain\n");
  if (check_floor) {
    std::printf("  [%s] sustained %.1f req/s vs floor %.1f\n",
                floor_ok ? "PASS" : "FAIL", sustained_qps, flags.qps_floor);
  }
  std::printf("%s\n", pass ? "SOAK OK" : "SOAK FAILED");
  return pass ? 0 : 1;
}
