#ifndef JUGGLER_TOOLS_ANALYZE_ENGINE_H_
#define JUGGLER_TOOLS_ANALYZE_ENGINE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/analyze/lexer.h"

namespace juggler::analyze {

/// One finding: `file:line: [rule] message`. Same shape and format as the
/// PR 2 lint tool, so baselines and CI greps carry over unchanged.
struct Finding {
  std::string file;  ///< Repo-relative path, '/' separators.
  int line = 0;      ///< 1-based.
  std::string rule;
  std::string message;
};

/// "file:line: [rule] message" — the single format the CLI, the tests, and
/// the baseline machinery all rely on.
std::string FormatFinding(const Finding& f);

/// Canonical include-guard macro for a repo-relative header path
/// (e.g. "src/common/status.h" -> "JUGGLER_COMMON_STATUS_H_").
std::string CanonicalGuard(const std::string& rel_path);

/// A function parameter or local variable: declared type text (normalized,
/// single spaces) and name.
struct Variable {
  std::string type;
  std::string name;
};

/// One function definition found in a file: enough symbol-table and extent
/// information for intraprocedural passes. Produced by `ScanFunctions`.
struct FunctionInfo {
  std::string name;            ///< Unqualified name ("Next", "~Router").
  std::string qualifier;       ///< "Class" for "Class::Next", else "".
  int line = 0;                ///< Line of the name token.
  size_t body_begin = 0;       ///< Token index of the opening '{'.
  size_t body_end = 0;         ///< Token index one past the closing '}'.
  std::vector<Variable> params;
  std::vector<Variable> locals;  ///< Declarations found in the body.
  /// Mutex names from REQUIRES(...) on this definition, if any.
  std::vector<std::string> requires_held;

  /// Declared type of `ident` (param first, then locals), or "".
  const std::string* TypeOf(const std::string& ident) const;
};

/// Everything a pass can see about one file.
struct FileUnit {
  std::string rel_path;
  std::vector<std::string> raw_lines;   ///< Verbatim (for NOLINT checks).
  std::vector<std::string> code_lines;  ///< Comments/strings blanked.
  std::vector<Token> tokens;            ///< From Lex().
  std::vector<FunctionInfo> functions;  ///< From ScanFunctions().
};

/// Builds the unit: splits lines, strips, lexes, scans functions.
FileUnit BuildFileUnit(const std::string& rel_path,
                       const std::string& content);

/// Token-stream function scanner: finds function definitions (free,
/// qualified member, and class-inline), their parameter lists, and the
/// local-variable declarations in their bodies. Heuristic by design — it has
/// no type system — but handles this repo's style: one statement per
/// declaration, Google-style formatting. Known envelope: function-try-blocks
/// and K&R oddities are unsupported; lambdas contribute their body's locals
/// to the enclosing function.
std::vector<FunctionInfo> ScanFunctions(const std::vector<Token>& tokens);

/// Cross-file facts gathered in a pre-pass over the whole tree, keyed by
/// file stem ("src/service/model_registry" for both .h and .cc) so a .cc
/// pass can see its header's declarations.
struct TreeContext {
  /// stem -> field name -> mutex name, from `GUARDED_BY(mu)` declarations.
  std::map<std::string, std::map<std::string, std::string>> guarded_fields;
  /// stem -> method name -> mutex names, from `REQUIRES(mu)` declarations.
  std::map<std::string, std::map<std::string, std::set<std::string>>>
      requires_methods;
  /// stem -> class/struct names declared in the stem's header.
  std::map<std::string, std::set<std::string>> class_names;
  /// Function names declared anywhere to return StatusOr<...> (e.g.
  /// "Parse"), used to type `auto x = Foo::Parse(...)` locals.
  std::set<std::string> statusor_returning;
  /// Function names declared to return std::optional<...>.
  std::set<std::string> optional_returning;
};

/// Path minus extension: "src/net/http.cc" -> "src/net/http".
std::string FileStem(const std::string& rel_path);

/// Scans one file's tokens into `ctx` (guarded fields, REQUIRES methods,
/// class names, StatusOr/optional-returning declarations).
void CollectTreeContext(const FileUnit& unit, TreeContext* ctx);

/// True when the raw line carries a suppression marker (`NOLINT` /
/// `lint:ignore`). Rule-blind, matching the PR 2 semantics; the documented
/// convention is `NOLINT(<rule>): reason` so suppressions stay auditable.
bool IsSuppressed(const std::string& raw_line);

/// A registered analysis. Passes are stateless; `Run` appends findings.
class Pass {
 public:
  virtual ~Pass() = default;
  virtual const char* name() const = 0;
  virtual void Run(const FileUnit& unit, const TreeContext& ctx,
                   std::vector<Finding>* findings) const = 0;
};

/// The full registry: the eleven legacy rules (ported from tools/lint) plus
/// the four scope/dataflow analyses. Order is stable.
const std::vector<const Pass*>& AllPasses();

/// Runs every pass over one file. `ctx` may be empty (single-file mode used
/// by most tests); cross-file analyses then see only this file's own
/// declarations (CollectTreeContext is applied to the unit itself first).
std::vector<Finding> AnalyzeFile(const std::string& rel_path,
                                 const std::string& content,
                                 const TreeContext* tree_ctx = nullptr);

/// Walks `root`'s source directories (src, tools, tests, bench, examples,
/// fuzz), builds the TreeContext, analyzes every .h/.cc/.cpp file, and
/// returns all findings sorted by (file, line, rule).
std::vector<Finding> AnalyzeTree(const std::string& root);

/// Compat entry points preserved from tools/lint (PR 2): run only the
/// eleven legacy rules, with their original rule names and messages.
/// tests/lint_test.cc and any external scripts keep working unchanged.
std::vector<Finding> LintFile(const std::string& rel_path,
                              const std::string& content);
std::vector<Finding> LintTree(const std::string& root);

}  // namespace juggler::analyze

#endif  // JUGGLER_TOOLS_ANALYZE_ENGINE_H_
