#include "tools/analyze/lexer.h"

#include <cctype>

namespace juggler::analyze {

namespace {

bool IsIdentStartChar(char c) {
  return (std::isalpha(static_cast<unsigned char>(c)) != 0) || c == '_';
}

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

/// Multi-character punctuators the analyses care about. Longest match wins;
/// anything not listed is emitted one character at a time. Deliberately
/// absent: trigraphs, `<=>`, `->*` (none appear in this codebase; `->*`
/// would lex as "->" "*", which is still unambiguous for our passes).
const char* const kPuncts[] = {
    "<<=", ">>=", "...", "::", "->", "<<", ">>", "<=", ">=", "==", "!=",
    "&&",  "||",  "+=",  "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++",
    "--",
};

/// If a raw-string literal starts at `i` (at the 'R'), returns one past its
/// end; otherwise returns `i`. Updates `line` for embedded newlines.
size_t SkipRawString(const std::string& s, size_t i, int* line) {
  // R"delim( ... )delim"  — delim is up to 16 chars, no parens/space.
  if (s[i] != 'R' || i + 1 >= s.size() || s[i + 1] != '"') return i;
  size_t j = i + 2;
  std::string delim;
  while (j < s.size() && s[j] != '(' && delim.size() <= 16) {
    delim.push_back(s[j]);
    ++j;
  }
  if (j >= s.size() || s[j] != '(') return i;  // Not a raw string after all.
  const std::string closer = ")" + delim + "\"";
  const size_t end = s.find(closer, j + 1);
  if (end == std::string::npos) {  // Unterminated: consume to EOF.
    for (size_t k = i; k < s.size(); ++k) {
      if (s[k] == '\n') ++*line;
    }
    return s.size();
  }
  for (size_t k = i; k < end + closer.size(); ++k) {
    if (s[k] == '\n') ++*line;
  }
  return end + closer.size();
}

}  // namespace

bool IsIdentChar(char c) {
  return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_';
}

std::vector<Token> Lex(const std::string& content) {
  std::vector<Token> tokens;
  int line = 1;
  size_t i = 0;
  const size_t n = content.size();
  bool at_line_start = true;  // Only whitespace seen since the last newline.

  while (i < n) {
    const char c = content[i];
    const char next = i + 1 < n ? content[i + 1] : '\0';

    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }

    // Comments.
    if (c == '/' && next == '/') {
      while (i < n && content[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && next == '*') {
      i += 2;
      while (i + 1 < n && !(content[i] == '*' && content[i + 1] == '/')) {
        if (content[i] == '\n') ++line;
        ++i;
      }
      i = i + 1 < n ? i + 2 : n;
      continue;
    }

    // Preprocessor directive: one token for the whole (continued) line.
    if (c == '#' && at_line_start) {
      std::string text;
      const int start_line = line;
      while (i < n) {
        if (content[i] == '\\' && i + 1 < n && content[i + 1] == '\n') {
          ++line;
          i += 2;
          text.push_back(' ');
          continue;
        }
        if (content[i] == '\n') break;
        // Strip comments inside the directive.
        if (content[i] == '/' && i + 1 < n && content[i + 1] == '/') {
          while (i < n && content[i] != '\n') ++i;
          break;
        }
        text.push_back(content[i]);
        ++i;
      }
      tokens.push_back(Token{TokenKind::kPreprocessor, text, start_line});
      continue;
    }
    at_line_start = false;

    // Raw string literal (must be checked before plain identifiers).
    if (c == 'R' && next == '"') {
      const size_t after = SkipRawString(content, i, &line);
      if (after != i) {
        tokens.push_back(Token{TokenKind::kString, "", line});
        i = after;
        continue;
      }
    }

    // Identifier / keyword.
    if (IsIdentStartChar(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(content[j])) ++j;
      tokens.push_back(
          Token{TokenKind::kIdentifier, content.substr(i, j - i), line});
      i = j;
      continue;
    }

    // Number (covers 0x1F, 1'000'000, 1.5e-3, trailing suffixes).
    if (IsDigit(c) || (c == '.' && IsDigit(next))) {
      size_t j = i;
      while (j < n && (IsIdentChar(content[j]) || content[j] == '.' ||
                       content[j] == '\'' ||
                       ((content[j] == '+' || content[j] == '-') && j > i &&
                        (content[j - 1] == 'e' || content[j - 1] == 'E' ||
                         content[j - 1] == 'p' || content[j - 1] == 'P')))) {
        ++j;
      }
      tokens.push_back(
          Token{TokenKind::kNumber, content.substr(i, j - i), line});
      i = j;
      continue;
    }

    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int start_line = line;
      ++i;
      while (i < n && content[i] != quote) {
        if (content[i] == '\\' && i + 1 < n) {
          if (content[i + 1] == '\n') ++line;
          i += 2;
          continue;
        }
        if (content[i] == '\n') {  // Unterminated literal: stop at the line.
          break;
        }
        ++i;
      }
      if (i < n && content[i] == quote) ++i;
      tokens.push_back(Token{quote == '"' ? TokenKind::kString
                                          : TokenKind::kCharLiteral,
                             "", start_line});
      continue;
    }

    // Punctuation: longest listed match, else a single character.
    bool matched = false;
    for (const char* p : kPuncts) {
      const size_t len = std::char_traits<char>::length(p);
      if (content.compare(i, len, p) == 0) {
        tokens.push_back(Token{TokenKind::kPunct, p, line});
        i += len;
        matched = true;
        break;
      }
    }
    if (!matched) {
      tokens.push_back(Token{TokenKind::kPunct, std::string(1, c), line});
      ++i;
    }
  }
  return tokens;
}

std::string StripCommentsAndStrings(const std::string& content) {
  std::string out = content;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"') {
          // Raw string: blank the whole literal (newlines preserved).
          int dummy_line = 0;
          const size_t after = SkipRawString(content, i, &dummy_line);
          if (after != i) {
            for (size_t k = i; k < after; ++k) {
              if (content[k] != '\n') out[k] = ' ';
            }
            i = after - 1;
          }
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == quote) {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

}  // namespace juggler::analyze
