#ifndef JUGGLER_TOOLS_ANALYZE_PASSES_H_
#define JUGGLER_TOOLS_ANALYZE_PASSES_H_

#include <vector>

#include "tools/analyze/engine.h"

/// Internal registry glue between engine.cc and the two pass translation
/// units. Not part of the public surface; include engine.h instead.
namespace juggler::analyze {

/// The eleven line-scoped rules ported from tools/lint (PR 2 + PR 7),
/// behavior-identical. Rule names are unchanged ("naked-new", ...).
const std::vector<const Pass*>& LegacyPasses();

/// The four scope/dataflow analyses new in this layer. Rule names are
/// prefixed "analyze-" (analyze-taint-bounds, analyze-unchecked-deref,
/// analyze-guarded-field, analyze-narrowing).
const std::vector<const Pass*>& DataflowPasses();

}  // namespace juggler::analyze

#endif  // JUGGLER_TOOLS_ANALYZE_PASSES_H_
