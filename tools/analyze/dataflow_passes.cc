/// The four scope/dataflow analyses that needed the token engine: taint
/// tracking from wire bytes to memory sinks, StatusOr/optional dereference
/// discipline, GUARDED_BY cross-checking for gcc builds, and narrowing
/// conversions on tainted values. All are intraprocedural and flow-
/// insensitive about branch polarity: "dominated by a bounds comparison"
/// means "a relational comparison involving the value appears earlier in
/// the token stream of the same function". That approximation is documented
/// in DESIGN.md §13 along with the known false-negative envelope.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/analyze/passes.h"

namespace juggler::analyze {

namespace {

constexpr size_t kNpos = static_cast<size_t>(-1);

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

bool IsIdentTok(const Token& t) { return t.kind == TokenKind::kIdentifier; }

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// The untrusted-byte surfaces: everything that decodes wire bytes or model
/// artifacts. (The plan grammar lives under src/minispark/cache_plan*; the
/// artifact loader under src/core/serialization*.)
bool IsDecoderFile(const std::string& rel_path) {
  return StartsWith(rel_path, "src/net/") ||
         StartsWith(rel_path, "src/rpc/") ||
         StartsWith(rel_path, "src/online/") ||
         StartsWith(rel_path, "src/core/serialization") ||
         StartsWith(rel_path, "src/minispark/cache_plan");
}

/// Functions whose parameters are wire-derived: the repo's decode entry
/// points all use these verb prefixes.
bool IsDecoderFunction(const std::string& name) {
  static const char* const kPrefixes[] = {"Decode", "Parse",   "Read",
                                          "Feed",   "Next",    "Consume",
                                          "Load",   "FromWire"};
  for (const char* p : kPrefixes) {
    if (StartsWith(name, p)) return true;
  }
  return false;
}

bool IsRelationalOp(const Token& t) {
  return t.kind == TokenKind::kPunct &&
         (t.text == "<" || t.text == "<=" || t.text == ">" ||
          t.text == ">=" || t.text == "==" || t.text == "!=");
}

size_t MatchParenFwd(const std::vector<Token>& toks, size_t open,
                     size_t end) {
  int depth = 0;
  for (size_t i = open; i < end; ++i) {
    if (IsPunct(toks[i], "(")) ++depth;
    if (IsPunct(toks[i], ")")) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return kNpos;
}

/// Shared intraprocedural taint walk over one function body. Seeds every
/// parameter of a decoder-named function, propagates through assignments
/// and declarations whose right-hand side mentions a tainted value, and
/// retires taint ("checked") once the value participates in a relational
/// comparison (against anything but nullptr or a string literal) or a
/// std::min/std::max/std::clamp call. Sinks are reported through the
/// `mode` the owning pass selects.
class TaintWalker {
 public:
  enum class Mode { kBounds, kNarrowing };

  TaintWalker(const FileUnit& unit, const FunctionInfo& fn, Mode mode,
              const char* rule, std::vector<Finding>* findings)
      : unit_(unit), fn_(fn), mode_(mode), rule_(rule), findings_(findings) {}

  void Run() {
    for (const Variable& p : fn_.params) tainted_.insert(p.name);
    const std::vector<Token>& toks = unit_.tokens;
    for (size_t i = fn_.body_begin + 1; i + 1 < fn_.body_end; ++i) {
      while (!pending_taints_.empty() && pending_taints_.front().first <= i) {
        tainted_.insert(pending_taints_.front().second);
        checked_.erase(pending_taints_.front().second);
        pending_taints_.erase(pending_taints_.begin());
      }
      const Token& t = toks[i];
      if (t.kind == TokenKind::kPunct) {
        HandlePunct(toks, i);
        continue;
      }
      if (!IsIdentTok(t)) continue;
      if (HandleCallOpen(toks, i)) continue;
      if (mode_ == Mode::kNarrowing && t.text == "static_cast") {
        i = HandleStaticCast(toks, i);
        continue;
      }
      HandleIdent(toks, i);
    }
  }

 private:
  struct Ctx {
    char open;  ///< '(' or '['.
    enum class Kind { kPlain, kSink, kClamp, kFor, kSubscript } kind;
    const char* sink = "";  ///< Sink spelling for the message.
  };

  bool IsTaintedUnchecked(const std::string& ident) const {
    return tainted_.count(ident) != 0 && checked_.count(ident) == 0;
  }

  /// Scalar values are the dangerous sink operands (sizes, counts,
  /// offsets); buffer pointers/references themselves are excluded so the
  /// destination argument of a memcpy does not fire.
  bool IsScalarOperand(const std::string& ident) const {
    const std::string* type = fn_.TypeOf(ident);
    if (type == nullptr) return true;  // Unknown: stay conservative.
    return type->find('*') == std::string::npos &&
           type->find('&') == std::string::npos;
  }

  void Flag(const Token& at, const std::string& ident,
            const std::string& what) {
    if (!flagged_.insert({at.line, ident}).second) return;
    findings_->push_back(Finding{
        unit_.rel_path, at.line, rule_,
        "'" + ident + "' " + what + " in '" + fn_.name +
            "' with no dominating bounds comparison in this function: "
            "wire-derived values must be range-checked before use "
            "(escape: NOLINT(" + rule_ + "): reason)"});
  }

  void HandlePunct(const std::vector<Token>& toks, size_t i) {
    const Token& t = toks[i];
    if (t.text == "(") {
      // Call/grouping context was classified by HandleCallOpen when the
      // callee identifier was visited; a bare '(' is plain (or a for).
      Ctx ctx{'(', Ctx::Kind::kPlain, ""};
      if (pending_ctx_.open == '(') {
        ctx = pending_ctx_;
        pending_ctx_ = Ctx{};
      }
      stack_.push_back(ctx);
      return;
    }
    if (t.text == ")") {
      if (!stack_.empty() && stack_.back().open == '(') stack_.pop_back();
      return;
    }
    if (t.text == "[") {
      const bool subscript =
          i > 0 && (IsIdentTok(toks[i - 1]) || IsPunct(toks[i - 1], ")") ||
                    IsPunct(toks[i - 1], "]"));
      stack_.push_back(
          Ctx{'[', subscript ? Ctx::Kind::kSubscript : Ctx::Kind::kPlain,
              "index"});
      return;
    }
    if (t.text == "]") {
      if (!stack_.empty() && stack_.back().open == '[') stack_.pop_back();
      return;
    }
    if (IsRelationalOp(t)) {
      MarkComparison(toks, i);
      return;
    }
    if (t.text == "=" || t.text == "+=" || t.text == "-=" ||
        t.text == "*=" || t.text == "|=" || t.text == "&=" ||
        t.text == "^=" || t.text == "<<=" || t.text == ">>=") {
      HandleAssignment(toks, i);
      return;
    }
    if (t.text == ":" && InForHeader()) {
      HandleRangeFor(toks, i);
      return;
    }
    if (mode_ == Mode::kBounds && (t.text == "+" || t.text == "-")) {
      HandlePointerArith(toks, i);
      return;
    }
  }

  /// Classifies the context the *next* '(' opens, based on the callee name.
  bool HandleCallOpen(const std::vector<Token>& toks, size_t i) {
    const Token& t = toks[i];
    if (i + 1 >= toks.size() || !IsPunct(toks[i + 1], "(")) return false;
    const std::string& callee = t.text;
    if (callee == "memcpy" || callee == "memmove" || callee == "memset" ||
        callee == "resize" || callee == "reserve") {
      // `memcpy(&n, wire, sizeof(n))` is the idiomatic length-prefix read:
      // the destination scalar inherits taint when any source operand is
      // tainted (both modes — the value may later be narrowed, not just
      // used as a size). Deferred past the call's closing paren so the
      // defining call itself (`&n`, `sizeof(n)`) is not flagged as a use.
      if (callee == "memcpy" || callee == "memmove") {
        const size_t close = MatchParenFwd(toks, i + 1, fn_.body_end);
        if (close != kNpos && i + 3 < close && IsPunct(toks[i + 2], "&") &&
            IsIdentTok(toks[i + 3])) {
          for (size_t k = i + 4; k < close; ++k) {
            if (IsIdentTok(toks[k]) && tainted_.count(toks[k].text) != 0) {
              pending_taints_.push_back({close + 1, toks[i + 3].text});
              break;
            }
          }
        }
      }
      if (mode_ == Mode::kBounds) {
        pending_ctx_ = Ctx{'(', Ctx::Kind::kSink,
                           callee == "resize" || callee == "reserve"
                               ? "allocation size"
                               : "memcpy-family argument"};
      }
      return false;  // Still process out-params etc. below if ever needed.
    }
    if (callee == "min" || callee == "max" || callee == "clamp") {
      pending_ctx_ = Ctx{'(', Ctx::Kind::kClamp, ""};
      return false;
    }
    if (callee == "for") {
      pending_ctx_ = Ctx{'(', Ctx::Kind::kFor, ""};
      return true;
    }
    // A Parse*/Read*/Decode* call taints any &out argument.
    if (IsDecoderFunction(callee)) {
      const size_t close = MatchParenFwd(toks, i + 1, fn_.body_end);
      if (close != kNpos) {
        for (size_t k = i + 2; k < close; ++k) {
          if (IsPunct(toks[k], "&") && k + 1 < close &&
              IsIdentTok(toks[k + 1])) {
            tainted_.insert(toks[k + 1].text);
            checked_.erase(toks[k + 1].text);
          }
        }
      }
    }
    return false;
  }

  bool InForHeader() const {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (it->open == '(') return it->kind == Ctx::Kind::kFor;
    }
    return false;
  }

  /// `for (const T& v : expr)`: taints v when expr mentions taint.
  void HandleRangeFor(const std::vector<Token>& toks, size_t colon) {
    if (colon == 0 || !IsIdentTok(toks[colon - 1])) return;
    const std::string var = toks[colon - 1].text;
    int depth = 1;
    for (size_t k = colon + 1; k < fn_.body_end && depth > 0; ++k) {
      if (IsPunct(toks[k], "(")) ++depth;
      if (IsPunct(toks[k], ")")) --depth;
      if (IsIdentTok(toks[k]) && tainted_.count(toks[k].text) != 0) {
        tainted_.insert(var);
        checked_.erase(var);
        return;
      }
    }
  }

  /// A relational comparison retires taint on its *operands*: identifiers
  /// in the arithmetic expression on either side of the op, plus the
  /// receiver of a `.size()`/`.length()` call (comparing a buffer's size IS
  /// the bounds check for that buffer). Values that merely appear nearby as
  /// receivers of other member calls (`json.array_items().size()`) are NOT
  /// marked — the call result was compared, not the object. Comparisons
  /// against nullptr, `npos`, or a string literal compare identity/content,
  /// not range, and mark nothing.
  void MarkComparison(const std::vector<Token>& toks, size_t op) {
    constexpr size_t kWindow = 10;
    bool degenerate = false;
    std::vector<std::string> operands;

    // Backward (left side).
    {
      size_t k = op;
      for (size_t steps = 0; steps < kWindow && k > fn_.body_begin; ++steps) {
        --k;
        const Token& t = toks[k];
        if (t.kind == TokenKind::kString) {
          degenerate = true;
          break;
        }
        if (IsIdentTok(t)) {
          if (t.text == "nullptr" || t.text == "npos") degenerate = true;
          operands.push_back(t.text);
          continue;
        }
        if (t.kind == TokenKind::kNumber ||
            t.kind == TokenKind::kCharLiteral) {
          continue;
        }
        if (IsPunct(t, ")") && k >= 3 && IsPunct(toks[k - 1], "(") &&
            IsIdentTok(toks[k - 2]) &&
            (toks[k - 2].text == "size" || toks[k - 2].text == "length") &&
            (IsPunct(toks[k - 3], ".") || IsPunct(toks[k - 3], "->"))) {
          k -= 3;  // Land on the '.': the next step marks the receiver.
          continue;
        }
        if (IsPunct(t, "+") || IsPunct(t, "-") || IsPunct(t, "*") ||
            IsPunct(t, "/") || IsPunct(t, "%")) {
          continue;
        }
        break;  // '.', '->', '(', ';', '&&', other calls: opaque.
      }
    }
    // Forward (right side).
    {
      size_t k = op;
      for (size_t steps = 0; steps < kWindow && k + 1 < fn_.body_end;
           ++steps) {
        ++k;
        const Token& t = toks[k];
        if (t.kind == TokenKind::kString) {
          degenerate = true;
          break;
        }
        if (IsIdentTok(t)) {
          if (t.text == "nullptr" || t.text == "npos") {
            degenerate = true;
            break;
          }
          if (k + 1 < fn_.body_end &&
              (IsPunct(toks[k + 1], ".") || IsPunct(toks[k + 1], "->"))) {
            const bool size_call =
                k + 3 < fn_.body_end && IsIdentTok(toks[k + 2]) &&
                (toks[k + 2].text == "size" ||
                 toks[k + 2].text == "length") &&
                IsPunct(toks[k + 3], "(");
            if (!size_call) break;  // Opaque member chain: stop unmarked.
            operands.push_back(t.text);
            k += 4;  // Past "x . size (" — loop advances over ")".
            continue;
          }
          operands.push_back(t.text);
          continue;
        }
        if (t.kind == TokenKind::kNumber ||
            t.kind == TokenKind::kCharLiteral) {
          continue;
        }
        if (IsPunct(t, "+") || IsPunct(t, "-") || IsPunct(t, "*") ||
            IsPunct(t, "/") || IsPunct(t, "%")) {
          continue;
        }
        break;  // ')', ';', '&&', '||', ',': end of the compared expression.
      }
    }
    if (degenerate) return;
    for (const std::string& ident : operands) {
      if (tainted_.count(ident) != 0) checked_.insert(ident);
    }
  }

  /// `v = rhs` / `v += rhs`: v's taint is recomputed from the RHS; any
  /// earlier bounds check on v no longer covers the new value.
  void HandleAssignment(const std::vector<Token>& toks, size_t eq) {
    if (eq == 0 || !IsIdentTok(toks[eq - 1])) return;
    // Member assignments (`o.target = ...`) are field writes, not locals.
    if (eq >= 2 &&
        (IsPunct(toks[eq - 2], ".") || IsPunct(toks[eq - 2], "->"))) {
      return;
    }
    const std::string var = toks[eq - 1].text;
    bool rhs_tainted = false;
    bool rhs_all_checked = true;
    bool rhs_clamped = false;
    int depth = 0;
    for (size_t k = eq + 1; k < fn_.body_end; ++k) {
      const Token& t = toks[k];
      if (IsIdentTok(t) && k + 1 < fn_.body_end && IsPunct(toks[k + 1], "(") &&
          (t.text == "min" || t.text == "max" || t.text == "clamp")) {
        rhs_clamped = true;  // std::min/max/clamp bound their result.
      }
      if (t.kind == TokenKind::kPunct) {
        if (t.text == "(" || t.text == "[") ++depth;
        if (t.text == ")" || t.text == "]") {
          if (depth == 0) break;  // Inside a call argument list: stop.
          --depth;
        }
        if ((t.text == ";" || t.text == "{" || t.text == "}") && depth <= 0) {
          break;
        }
        if (t.text == "," && depth == 0) break;
      }
      if (IsIdentTok(t) && tainted_.count(t.text) != 0) {
        rhs_tainted = true;
        if (checked_.count(t.text) == 0) rhs_all_checked = false;
      }
    }
    const bool compound = !IsPunct(toks[eq], "=");
    if (rhs_tainted) {
      // A value derived only from already-range-checked values inherits
      // "checked" (e.g. `digit = c - '0'` after `c >= '0' && c <= '9'`).
      tainted_.insert(var);
      if ((rhs_all_checked || rhs_clamped) && !compound) {
        checked_.insert(var);
      } else {
        checked_.erase(var);
      }
    } else if (!compound) {
      tainted_.erase(var);
      checked_.erase(var);
    } else if (tainted_.count(var) != 0) {
      checked_.erase(var);  // offset += clean still moves the value.
    }
  }

  /// `p + v` where p is pointer-typed (or a .data()/.begin()/.c_str()
  /// chain): pointer arithmetic with a tainted offset.
  void HandlePointerArith(const std::vector<Token>& toks, size_t op) {
    if (op + 1 >= fn_.body_end || !IsIdentTok(toks[op + 1])) return;
    const std::string& rhs = toks[op + 1].text;
    if (!IsTaintedUnchecked(rhs) || !IsScalarOperand(rhs)) return;
    bool pointerish = false;
    if (op > 0 && IsIdentTok(toks[op - 1])) {
      const std::string* type = fn_.TypeOf(toks[op - 1].text);
      pointerish = type != nullptr && type->find('*') != std::string::npos;
    } else if (op >= 3 && IsPunct(toks[op - 1], ")") &&
               IsPunct(toks[op - 2], "(") && IsIdentTok(toks[op - 3])) {
      const std::string& call = toks[op - 3].text;
      pointerish = call == "data" || call == "begin" || call == "end" ||
                   call == "c_str";
    }
    if (pointerish) Flag(toks[op + 1], rhs, "used as a pointer offset");
  }

  size_t HandleStaticCast(const std::vector<Token>& toks, size_t i) {
    static const char* const kIntegral[] = {
        "int",      "int8_t",  "int16_t",  "int32_t", "int64_t",
        "uint8_t",  "uint16_t", "uint32_t", "uint64_t", "short",
        "long",     "size_t",  "unsigned", "char",
    };
    if (i + 1 >= fn_.body_end || !IsPunct(toks[i + 1], "<")) return i;
    size_t gt = i + 2;
    bool integral = false;
    while (gt < fn_.body_end && !IsPunct(toks[gt], ">")) {
      if (IsIdentTok(toks[gt])) {
        for (const char* name : kIntegral) {
          if (toks[gt].text == name) integral = true;
        }
      }
      if (IsPunct(toks[gt], "*") || IsPunct(toks[gt], "&")) {
        integral = false;  // Pointer cast, not a value conversion.
        break;
      }
      ++gt;
    }
    if (!integral || gt + 1 >= fn_.body_end || !IsPunct(toks[gt + 1], "(")) {
      return i;
    }
    const size_t close = MatchParenFwd(toks, gt + 1, fn_.body_end);
    if (close == kNpos) return i;
    for (size_t k = gt + 2; k < close; ++k) {
      if (IsIdentTok(toks[k]) && IsTaintedUnchecked(toks[k].text)) {
        // `p[i]` on a tainted byte pointer loads one byte: widening it to
        // a larger integral type is always in range. (The value flagged
        // here must be the wide side of the conversion.)
        if (k + 1 < close && IsPunct(toks[k + 1], "[")) {
          const std::string* type = fn_.TypeOf(toks[k].text);
          if (type != nullptr && type->find('*') != std::string::npos) {
            continue;
          }
        }
        findings_->push_back(Finding{
            unit_.rel_path, toks[i].line, rule_,
            "static_cast to an integral type of a wire-derived value "
            "('" + toks[k].text + "') in '" + fn_.name +
                "' with no dominating range check: out-of-range "
                "float-to-int conversion is undefined behavior; validate "
                "first or use a checked conversion from common/parse.h "
                "(escape: NOLINT(" + std::string(rule_) + "): reason)"});
        break;
      }
    }
    return close;
  }

  /// Implicit narrowing declarations (`int n = wide;`) and sink-context
  /// occurrences of tainted identifiers.
  void HandleIdent(const std::vector<Token>& toks, size_t i) {
    const std::string& ident = toks[i].text;
    if (mode_ == Mode::kNarrowing) {
      HandleNarrowDecl(toks, i);
      return;
    }
    if (!IsTaintedUnchecked(ident) || !IsScalarOperand(ident)) return;
    // Inside a clamp call the value is being bounded, not used.
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (it->kind == Ctx::Kind::kClamp) {
        checked_.insert(ident);
        return;
      }
    }
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (it->kind == Ctx::Kind::kSubscript) {
        Flag(toks[i], ident, "used as a subscript index");
        return;
      }
      if (it->kind == Ctx::Kind::kSink) {
        Flag(toks[i], ident, std::string("used as a ") + it->sink);
        return;
      }
    }
  }

  void HandleNarrowDecl(const std::vector<Token>& toks, size_t i) {
    static const char* const kNarrow[] = {"int",     "int8_t",  "int16_t",
                                          "int32_t", "uint8_t", "uint16_t",
                                          "short",   "char"};
    static const char* const kWide[] = {"size_t",  "uint32_t", "uint64_t",
                                        "int64_t", "double",   "long",
                                        "ssize_t", "ptrdiff_t"};
    // `v = rhs` where v is a narrow local and rhs mentions a tainted value
    // of wide (or unknown-wide call) type.
    if (i + 1 >= fn_.body_end || !IsPunct(toks[i + 1], "=")) return;
    if (i > 0 && (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->"))) {
      return;
    }
    const std::string* type = fn_.TypeOf(toks[i].text);
    if (type == nullptr) return;
    bool narrow = false;
    for (const char* n : kNarrow) {
      const size_t pos = type->find(n);
      if (pos != std::string::npos &&
          (pos == 0 || !IsIdentChar((*type)[pos - 1])) &&
          (pos + std::string(n).size() == type->size() ||
           !IsIdentChar((*type)[pos + std::string(n).size()]))) {
        narrow = true;
      }
    }
    if (!narrow || type->find('*') != std::string::npos) return;
    // Scan the RHS for a tainted, unchecked identifier of wide type.
    int depth = 0;
    for (size_t k = i + 2; k < fn_.body_end; ++k) {
      const Token& t = toks[k];
      if (t.kind == TokenKind::kPunct) {
        if (t.text == "(" || t.text == "[") ++depth;
        if (t.text == ")" || t.text == "]") {
          if (depth == 0) break;
          --depth;
        }
        if ((t.text == ";" || t.text == "{") && depth <= 0) break;
        if (t.text == "," && depth == 0) break;
      }
      if (!IsIdentTok(t) || !IsTaintedUnchecked(t.text)) continue;
      const std::string* rhs_type = fn_.TypeOf(t.text);
      bool wide = false;
      if (rhs_type != nullptr) {
        for (const char* w : kWide) {
          if (rhs_type->find(w) != std::string::npos) wide = true;
        }
      }
      // Wide-producing calls on a tainted receiver also count.
      if (k + 2 < fn_.body_end &&
          (IsPunct(toks[k + 1], ".") || IsPunct(toks[k + 1], "->")) &&
          IsIdentTok(toks[k + 2])) {
        const std::string& member = toks[k + 2].text;
        if (member == "size" || member == "length" ||
            member == "NumberOr" || member == "number_value") {
          wide = true;
        }
      }
      if (!wide) continue;
      findings_->push_back(Finding{
          unit_.rel_path, toks[i].line, rule_,
          "narrowing assignment of wire-derived '" + t.text + "' into " +
              *type + " '" + toks[i].text + "' in '" + fn_.name +
              "' with no dominating range check "
              "(escape: NOLINT(" + std::string(rule_) + "): reason)"});
      return;
    }
  }

  const FileUnit& unit_;
  const FunctionInfo& fn_;
  const Mode mode_;
  const char* rule_;
  std::vector<Finding>* findings_;

  std::set<std::string> tainted_;
  std::set<std::string> checked_;
  std::vector<Ctx> stack_;
  Ctx pending_ctx_{};
  std::set<std::pair<int, std::string>> flagged_;
  /// (token index, ident): taints applied once the walk passes the index
  /// (memcpy length-prefix reads; see HandleCallOpen).
  std::vector<std::pair<size_t, std::string>> pending_taints_;
};

/// (1) Taint-to-sink decoder checking.
class TaintBoundsPass final : public Pass {
 public:
  const char* name() const override { return "analyze-taint-bounds"; }
  void Run(const FileUnit& unit, const TreeContext&,
           std::vector<Finding>* findings) const override {
    if (!IsDecoderFile(unit.rel_path)) return;
    for (const FunctionInfo& fn : unit.functions) {
      if (!IsDecoderFunction(fn.name)) continue;
      TaintWalker(unit, fn, TaintWalker::Mode::kBounds, name(), findings)
          .Run();
    }
  }
};

/// (4) Narrowing-in-decoder checking.
class NarrowingPass final : public Pass {
 public:
  const char* name() const override { return "analyze-narrowing"; }
  void Run(const FileUnit& unit, const TreeContext&,
           std::vector<Finding>* findings) const override {
    if (!IsDecoderFile(unit.rel_path)) return;
    for (const FunctionInfo& fn : unit.functions) {
      if (!IsDecoderFunction(fn.name)) continue;
      TaintWalker(unit, fn, TaintWalker::Mode::kNarrowing, name(), findings)
          .Run();
    }
  }
};

/// (2) Unchecked StatusOr/optional dereference.
class UncheckedDerefPass final : public Pass {
 public:
  const char* name() const override { return "analyze-unchecked-deref"; }
  void Run(const FileUnit& unit, const TreeContext& ctx,
           std::vector<Finding>* findings) const override {
    if (!StartsWith(unit.rel_path, "src/")) return;
    for (const FunctionInfo& fn : unit.functions) {
      CheckFunction(unit, ctx, fn, findings);
    }
  }

 private:
  static bool TypeIsWrapped(const std::string& type) {
    return type.find("StatusOr") != std::string::npos ||
           type.find("optional") != std::string::npos;
  }

  void CheckFunction(const FileUnit& unit, const TreeContext& ctx,
                     const FunctionInfo& fn,
                     std::vector<Finding>* findings) const {
    const std::vector<Token>& toks = unit.tokens;
    // Wrapped values in scope: params with StatusOr/optional types, locals
    // with explicit wrapped types, and `auto` locals initialized from a
    // function declared to return StatusOr/optional.
    std::set<std::string> wrapped;
    for (const Variable& v : fn.params) {
      if (TypeIsWrapped(v.type)) wrapped.insert(v.name);
    }
    for (const Variable& v : fn.locals) {
      if (TypeIsWrapped(v.type)) {
        wrapped.insert(v.name);
        continue;
      }
      if (v.type.find("auto") == std::string::npos) continue;
      // Find `v = callee(...)` in the body and test the callee name.
      for (size_t k = fn.body_begin + 1; k + 2 < fn.body_end; ++k) {
        if (!IsIdentTok(toks[k]) || toks[k].text != v.name) continue;
        if (!IsPunct(toks[k + 1], "=")) continue;
        for (size_t c = k + 2; c + 1 < fn.body_end; ++c) {
          if (IsPunct(toks[c], ";")) break;
          if (IsIdentTok(toks[c]) && IsPunct(toks[c + 1], "(") &&
              (ctx.statusor_returning.count(toks[c].text) != 0 ||
               ctx.optional_returning.count(toks[c].text) != 0)) {
            wrapped.insert(v.name);
            break;
          }
        }
        break;
      }
    }
    if (wrapped.empty()) return;

    std::set<std::string> validated;
    std::set<std::pair<int, std::string>> flagged;
    for (size_t i = fn.body_begin + 1; i + 1 < fn.body_end; ++i) {
      const Token& t = toks[i];
      if (!IsIdentTok(t) || wrapped.count(t.text) == 0) continue;
      const std::string& v = t.text;
      // A container of wrapped values is validated/dereferenced through a
      // subscript (`responses[i].ok()`, `*responses[i]`): look through one
      // balanced [...] group. Validation is coarse (any element counts).
      size_t after = i;
      if (i + 1 < fn.body_end && IsPunct(toks[i + 1], "[")) {
        int brackets = 0;
        for (size_t k = i + 1; k < fn.body_end; ++k) {
          if (IsPunct(toks[k], "[")) ++brackets;
          if (IsPunct(toks[k], "]")) {
            --brackets;
            if (brackets == 0) {
              after = k;
              break;
            }
          }
        }
        if (after == i) continue;  // Unbalanced: bail on this use.
      }
      const Token* next = after + 1 < fn.body_end ? &toks[after + 1] : nullptr;
      const Token* prev = i > fn.body_begin ? &toks[i - 1] : nullptr;

      // Validation forms: v.ok(), v.has_value(), !v, if (v), v ==/!= ...
      if (next != nullptr &&
          (IsPunct(*next, ".") || IsPunct(*next, "->")) &&
          after + 2 < fn.body_end && IsIdentTok(toks[after + 2]) &&
          (toks[after + 2].text == "ok" ||
           toks[after + 2].text == "has_value")) {
        validated.insert(v);
        continue;
      }
      if (prev != nullptr && IsPunct(*prev, "!")) {
        validated.insert(v);
        continue;
      }
      if (prev != nullptr && IsPunct(*prev, "(") && next != nullptr &&
          IsPunct(*next, ")") && i >= 2 && IsIdentTok(toks[i - 2]) &&
          (toks[i - 2].text == "if" || toks[i - 2].text == "while")) {
        validated.insert(v);
        continue;
      }
      if (next != nullptr && (IsPunct(*next, "==") || IsPunct(*next, "!="))) {
        validated.insert(v);
        continue;
      }
      // Re-assignment: the wrapped value changed; require a fresh check.
      if (next != nullptr && IsPunct(*next, "=")) {
        validated.erase(v);
        continue;
      }

      // Dereference forms: *v, v->, v.value().
      bool deref = false;
      const char* how = "";
      if (next != nullptr && IsPunct(*next, "->")) {
        deref = true;
        how = "operator->";
      } else if (next != nullptr && IsPunct(*next, ".") &&
                 after + 3 < fn.body_end && IsIdentTok(toks[after + 2]) &&
                 toks[after + 2].text == "value" &&
                 IsPunct(toks[after + 3], "(")) {
        deref = true;
        how = ".value()";
      } else if (prev != nullptr && IsPunct(*prev, "*")) {
        // Unary '*' only: the token before it must not end an operand.
        const Token* before = i >= 2 ? &toks[i - 2] : nullptr;
        const bool binary =
            before != nullptr &&
            (before->kind == TokenKind::kNumber ||
             IsPunct(*before, ")") || IsPunct(*before, "]") ||
             (IsIdentTok(*before) && before->text != "return" &&
              before->text != "case" && before->text != "co_return"));
        if (!binary) {
          deref = true;
          how = "operator*";
        }
      }
      if (deref && validated.count(v) == 0 &&
          flagged.insert({t.line, v}).second) {
        findings->push_back(Finding{
            unit.rel_path, t.line, name(),
            "'" + v + "' dereferenced via " + how + " in '" + fn.name +
                "' without a dominating ok()/has_value() check: an error "
                "value makes this undefined behavior; test it first "
                "(escape: NOLINT(analyze-unchecked-deref): reason)"});
      }
    }
  }
};

/// (3) GUARDED_BY cross-check: gives gcc builds the field-access checking
/// clang's -Wthread-safety gives clang builds.
class GuardedFieldPass final : public Pass {
 public:
  const char* name() const override { return "analyze-guarded-field"; }
  void Run(const FileUnit& unit, const TreeContext& ctx,
           std::vector<Finding>* findings) const override {
    if (!StartsWith(unit.rel_path, "src/")) return;
    const std::string stem = FileStem(unit.rel_path);
    const auto fields_it = ctx.guarded_fields.find(stem);
    if (fields_it == ctx.guarded_fields.end()) return;
    const auto& fields = fields_it->second;
    const auto classes_it = ctx.class_names.find(stem);
    const auto requires_it = ctx.requires_methods.find(stem);

    for (const FunctionInfo& fn : unit.functions) {
      if (fn.name.empty() || fn.name[0] == '~') continue;  // Destructors.
      const bool is_ctor =
          fn.name == fn.qualifier ||
          (classes_it != ctx.class_names.end() &&
           classes_it->second.count(fn.name) != 0 && fn.qualifier.empty());
      if (is_ctor) continue;  // Construction predates sharing.
      CheckFunction(unit, fn, fields,
                    requires_it != ctx.requires_methods.end()
                        ? &requires_it->second
                        : nullptr,
                    findings);
    }
  }

 private:
  void CheckFunction(
      const FileUnit& unit, const FunctionInfo& fn,
      const std::map<std::string, std::string>& fields,
      const std::map<std::string, std::set<std::string>>* requires_map,
      std::vector<Finding>* findings) const {
    const std::vector<Token>& toks = unit.tokens;
    std::set<std::string> base_held(fn.requires_held.begin(),
                                    fn.requires_held.end());
    if (requires_map != nullptr) {
      const auto it = requires_map->find(fn.name);
      if (it != requires_map->end()) {
        base_held.insert(it->second.begin(), it->second.end());
      }
    }
    // (depth, mutex) entries for MutexLock / AssertHeld scopes.
    std::vector<std::pair<int, std::string>> held;
    int depth = 0;
    std::set<std::pair<int, std::string>> flagged;
    for (size_t i = fn.body_begin; i < fn.body_end; ++i) {
      const Token& t = toks[i];
      if (IsPunct(t, "{")) {
        ++depth;
        continue;
      }
      if (IsPunct(t, "}")) {
        --depth;
        while (!held.empty() && held.back().first > depth) held.pop_back();
        continue;
      }
      if (!IsIdentTok(t)) continue;
      if (t.text == "MutexLock" && i + 2 < fn.body_end &&
          IsIdentTok(toks[i + 1]) && IsPunct(toks[i + 2], "(")) {
        const size_t close = MatchParenFwd(toks, i + 2, fn.body_end);
        if (close != kNpos) {
          std::string mu;
          for (size_t k = i + 3; k < close; ++k) {
            if (IsIdentTok(toks[k])) mu = toks[k].text;
          }
          if (!mu.empty()) held.emplace_back(depth, mu);
        }
        continue;
      }
      if ((t.text == "AssertHeld" || t.text == "TryLock") && i >= 2 &&
          (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->")) &&
          IsIdentTok(toks[i - 2])) {
        held.emplace_back(depth, toks[i - 2].text);
        continue;
      }
      const auto field_it = fields.find(t.text);
      if (field_it == fields.end()) continue;
      if (fn.TypeOf(t.text) != nullptr) continue;  // Shadowed by a local.
      if (i + 1 < fn.body_end && IsPunct(toks[i + 1], "(")) continue;
      const std::string& mu = field_it->second;
      bool ok = base_held.count(mu) != 0;
      for (const auto& [d, name] : held) {
        if (name == mu) ok = true;
      }
      if (!ok && flagged.insert({t.line, t.text}).second) {
        findings->push_back(Finding{
            unit.rel_path, t.line, name(),
            "'" + t.text + "' is GUARDED_BY(" + mu + ") but '" + fn.name +
                "' touches it with no MutexLock(&" + mu + ") in scope, no " +
                mu + ".AssertHeld(), and no REQUIRES(" + mu +
                ") annotation (escape: NOLINT(analyze-guarded-field): "
                "reason)"});
      }
    }
  }
};

}  // namespace

const std::vector<const Pass*>& DataflowPasses() {
  static const std::vector<const Pass*>* passes = [] {
    return new std::vector<const Pass*>{
        new TaintBoundsPass,
        new UncheckedDerefPass,
        new GuardedFieldPass,
        new NarrowingPass,
    };
  }();
  return *passes;
}

}  // namespace juggler::analyze
