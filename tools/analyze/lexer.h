#ifndef JUGGLER_TOOLS_ANALYZE_LEXER_H_
#define JUGGLER_TOOLS_ANALYZE_LEXER_H_

#include <string>
#include <vector>

namespace juggler::analyze {

/// \brief Token kinds produced by `Lex`.
///
/// The lexer is deliberately shallow: it classifies just enough for
/// scope-tracked, identifier-level analysis (see engine.h). Numbers are not
/// split into int/float; punctuation is emitted one operator per token with
/// the few multi-char operators that matter for analysis (`->`, `::`, `<<`,
/// `>>`, comparison and logical operators) glued together.
enum class TokenKind {
  kIdentifier,   ///< [A-Za-z_][A-Za-z0-9_]*
  kNumber,       ///< Numeric literal (ints, floats, hex, digit separators).
  kString,       ///< String literal, including raw strings. Text is omitted.
  kCharLiteral,  ///< Character literal. Text is omitted.
  kPunct,        ///< Operator / punctuation, e.g. "{", "->", "<=", "::".
  kPreprocessor  ///< A whole preprocessor directive line ("#include <x>").
};

struct Token {
  TokenKind kind;
  std::string text;  ///< Spelled text ("" for string/char literal bodies).
  int line = 0;      ///< 1-based line of the token's first character.
};

/// Tokenizes C++ source. Comments are skipped entirely; string and character
/// literals (including raw strings and escape sequences) become single
/// content-less tokens so no analysis ever matches inside them; each
/// preprocessor directive (with line continuations folded) becomes one
/// kPreprocessor token carrying its full text.
std::vector<Token> Lex(const std::string& content);

/// Replaces comment bodies and string/char-literal contents with spaces,
/// preserving line structure. Retained for the line-scoped legacy rules
/// (ported from tools/lint) that match tokens per line rather than over the
/// token stream. Handles raw strings, unlike the PR 2 version.
std::string StripCommentsAndStrings(const std::string& content);

/// True for [A-Za-z0-9_].
bool IsIdentChar(char c);

}  // namespace juggler::analyze

#endif  // JUGGLER_TOOLS_ANALYZE_LEXER_H_
