/// CLI for the juggler_analyze engine (tools/analyze/engine.h).
///
/// Modes:
///   juggler_analyze <repo-root>                 full tree, baseline-aware
///   juggler_analyze <repo-root> --diff <ref>    fail only on changed lines
///   juggler_analyze <repo-root> --write-baseline  regenerate the baseline
///
/// Exit status: 0 when no *fresh* findings (full mode) or no fresh findings
/// on changed lines (diff mode); 1 otherwise; 2 on usage/IO errors.
/// Baselined findings and — in diff mode — fresh-but-unchanged findings are
/// printed as warnings so the debt stays visible without blocking.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "tools/analyze/baseline.h"
#include "tools/analyze/engine.h"

namespace {

using juggler::analyze::AnalyzeTree;
using juggler::analyze::Baseline;
using juggler::analyze::BaselineKey;
using juggler::analyze::Finding;
using juggler::analyze::FormatFinding;
using juggler::analyze::ParseBaseline;
using juggler::analyze::ParseChangedLines;
using juggler::analyze::PartitionAgainstBaseline;
using juggler::analyze::SerializeBaseline;

/// Lazily-read source lines, for baseline keys (keyed on line text).
class LineCache {
 public:
  explicit LineCache(std::string root) : root_(std::move(root)) {}

  std::string LineText(const Finding& f) {
    auto it = files_.find(f.file);
    if (it == files_.end()) {
      std::vector<std::string> lines;
      std::ifstream in(std::filesystem::path(root_) / f.file,
                       std::ios::binary);
      std::string line;
      while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r') line.pop_back();
        lines.push_back(line);
      }
      it = files_.emplace(f.file, std::move(lines)).first;
    }
    const auto& lines = it->second;
    const size_t idx = static_cast<size_t>(f.line) - 1;
    return f.line > 0 && idx < lines.size() ? lines[idx] : "";
  }

 private:
  std::string root_;
  std::map<std::string, std::vector<std::string>> files_;
};

std::string RunGitDiff(const std::string& root, const std::string& ref,
                       bool* ok) {
  const std::string cmd = "git -C '" + root + "' diff -U0 --no-color '" +
                          ref + "' -- src tools tests bench examples fuzz "
                          "2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");  // NOLINT: CLI glue, no lock held.
  if (pipe == nullptr) {
    *ok = false;
    return "";
  }
  std::string out;
  char buffer[4096];
  size_t n = 0;
  while ((n = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    out.append(buffer, n);
  }
  *ok = pclose(pipe) == 0;
  return out;
}

int Usage() {
  std::cerr
      << "usage: juggler_analyze <repo-root> [options]\n"
         "  --baseline <file>   baseline path (default: "
         "<root>/tools/analyze/baseline.txt)\n"
         "  --no-baseline       ignore the baseline (all findings fail)\n"
         "  --write-baseline    regenerate the baseline from this tree\n"
         "  --diff <ref>        fail only on findings on lines changed vs "
         "<ref>\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string root = argv[1];
  std::string baseline_path;
  bool use_baseline = true;
  bool write_baseline = false;
  std::string diff_ref;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--no-baseline") {
      use_baseline = false;
    } else if (arg == "--write-baseline") {
      write_baseline = true;
    } else if (arg == "--diff" && i + 1 < argc) {
      diff_ref = argv[++i];
    } else {
      return Usage();
    }
  }
  if (baseline_path.empty()) {
    baseline_path = (std::filesystem::path(root) / "tools" / "analyze" /
                     "baseline.txt")
                        .string();
  }

  const std::vector<Finding> findings = AnalyzeTree(root);
  LineCache lines(root);
  std::vector<std::string> keys;
  keys.reserve(findings.size());
  for (const Finding& f : findings) {
    keys.push_back(BaselineKey(f, lines.LineText(f)));
  }

  if (write_baseline) {
    std::ofstream out(baseline_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "juggler_analyze: cannot write " << baseline_path << "\n";
      return 2;
    }
    out << SerializeBaseline(keys);
    std::cout << "juggler_analyze: wrote " << findings.size()
              << " baseline entr" << (findings.size() == 1 ? "y" : "ies")
              << " to " << baseline_path << "\n";
    return 0;
  }

  Baseline baseline;
  if (use_baseline) {
    std::ifstream in(baseline_path, std::ios::binary);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      baseline = ParseBaseline(buffer.str());
    }
  }

  std::vector<Finding> baselined;
  std::vector<Finding> fresh;
  PartitionAgainstBaseline(findings, keys, baseline, &baselined, &fresh);

  std::vector<Finding> errors;
  std::vector<Finding> warnings = baselined;
  if (diff_ref.empty()) {
    errors = fresh;
  } else {
    bool git_ok = true;
    const std::string diff = RunGitDiff(root, diff_ref, &git_ok);
    if (!git_ok && diff.empty()) {
      std::cerr << "juggler_analyze: git diff against '" << diff_ref
                << "' failed\n";
      return 2;
    }
    const auto changed = ParseChangedLines(diff);
    for (const Finding& f : fresh) {
      const auto it = changed.find(f.file);
      if (it != changed.end() && it->second.count(f.line) != 0) {
        errors.push_back(f);
      } else {
        warnings.push_back(f);
      }
    }
  }

  for (const Finding& f : warnings) {
    std::cout << "warning: " << FormatFinding(f) << "\n";
  }
  for (const Finding& f : errors) {
    std::cout << "error: " << FormatFinding(f) << "\n";
  }
  if (!errors.empty()) {
    std::cout << errors.size() << " error(s), " << warnings.size()
              << " warning(s). Fix the errors, suppress with "
                 "NOLINT(<rule>): reason, or (for pre-existing debt only) "
                 "add to tools/analyze/baseline.txt.\n";
    return 1;
  }
  if (!warnings.empty()) {
    std::cout << warnings.size()
              << " baselined/unchanged warning(s), 0 errors.\n";
  }
  return 0;
}
