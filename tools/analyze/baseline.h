#ifndef JUGGLER_TOOLS_ANALYZE_BASELINE_H_
#define JUGGLER_TOOLS_ANALYZE_BASELINE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/analyze/engine.h"

namespace juggler::analyze {

/// \brief Findings baseline: pre-existing debt warns, new debt fails.
///
/// A baseline entry keys a finding by `file|rule|<normalized line text>`
/// rather than by line number, so unrelated edits that shift a finding up
/// or down the file do not invalidate the whole baseline. Entries are
/// counted (a multiset): if the tree has three identical findings and the
/// baseline lists two, one is fresh.
///
/// Workflow: `juggler_analyze <root> --write-baseline` regenerates
/// tools/analyze/baseline.txt from the current tree; shrinking it is always
/// welcome, growing it needs the same review a suppression does.
struct Baseline {
  /// key -> allowed count.
  std::map<std::string, int> entries;
};

/// Key for one finding. `line_text` is the finding's source line verbatim;
/// it is whitespace-normalized internally.
std::string BaselineKey(const Finding& finding, const std::string& line_text);

/// Parses the baseline file format: one key per line, '#' comments and
/// blank lines ignored.
Baseline ParseBaseline(const std::string& text);

/// Serializes sorted keys (with repeats for counts) plus a header comment.
std::string SerializeBaseline(const std::vector<std::string>& keys);

/// Splits `findings` into (baselined, fresh) by consuming baseline counts
/// in order. `keys[i]` must be BaselineKey of `findings[i]`.
void PartitionAgainstBaseline(const std::vector<Finding>& findings,
                              const std::vector<std::string>& keys,
                              const Baseline& baseline,
                              std::vector<Finding>* baselined,
                              std::vector<Finding>* fresh);

/// Changed lines per repo-relative file, parsed from `git diff -U0` output:
/// "+++ b/<path>" headers and "@@ -a,b +c,d @@" hunks. Deleted-only hunks
/// contribute nothing.
std::map<std::string, std::set<int>> ParseChangedLines(
    const std::string& unified_diff);

}  // namespace juggler::analyze

#endif  // JUGGLER_TOOLS_ANALYZE_BASELINE_H_
