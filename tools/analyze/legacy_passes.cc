/// The eleven line-scoped rules from tools/lint (PR 2, extended in PR 7),
/// re-homed as engine passes. Matching logic is behavior-identical to the
/// regex/token scanner they came from; only the plumbing changed (scope
/// decisions moved from LintFile's body into each pass, and NOLINT
/// suppression moved into the engine so it is applied uniformly).

#include <algorithm>
#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "tools/analyze/passes.h"

namespace juggler::analyze {

namespace {

/// Position of `token` in `line` with identifier-boundary checks on both
/// ends, or npos. `token` may itself contain non-identifier chars ("::").
size_t FindToken(const std::string& line, const std::string& token,
                 size_t from = 0) {
  for (size_t pos = line.find(token, from); pos != std::string::npos;
       pos = line.find(token, pos + 1)) {
    const bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    const size_t end = pos + token.size();
    const bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (left_ok && right_ok) return pos;
  }
  return std::string::npos;
}

bool HasToken(const std::string& line, const std::string& token) {
  return FindToken(line, token) != std::string::npos;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsHeader(const std::string& rel_path) { return EndsWith(rel_path, ".h"); }

/// Last non-space character before `pos`, or '\0'.
char PrevNonSpace(const std::string& line, size_t pos) {
  while (pos > 0) {
    --pos;
    if (!std::isspace(static_cast<unsigned char>(line[pos]))) return line[pos];
  }
  return '\0';
}

/// Extracts the identifier starting at `pos` (which must be an identifier
/// start position) and returns one-past-its-end.
size_t IdentEnd(const std::string& line, size_t pos) {
  size_t end = pos;
  while (end < line.size() && IsIdentChar(line[end])) ++end;
  return end;
}

/// True when an identifier token starts at `pos` (boundary on the left).
bool IsIdentStart(const std::string& line, size_t pos) {
  return IsIdentChar(line[pos]) && (pos == 0 || !IsIdentChar(line[pos - 1]));
}

void Add(const FileUnit& unit, std::vector<Finding>* findings, size_t i,
         std::string rule, std::string message) {
  findings->push_back(Finding{unit.rel_path, static_cast<int>(i + 1),
                              std::move(rule), std::move(message)});
}

bool InSrc(const FileUnit& u) { return StartsWith(u.rel_path, "src/"); }
bool InNet(const FileUnit& u) { return StartsWith(u.rel_path, "src/net/"); }

class NondeterminismPass final : public Pass {
 public:
  const char* name() const override { return "nondeterminism"; }
  void Run(const FileUnit& unit, const TreeContext&,
           std::vector<Finding>* findings) const override {
    if (!InSrc(unit) || unit.rel_path == "src/common/random.h") return;
    static const char* const kBanned[] = {
        "rand",        "srand",        "rand_r",
        "random_device", "mt19937",    "mt19937_64",
        "default_random_engine",
    };
    const std::vector<std::string>& code = unit.code_lines;
    for (size_t i = 0; i < code.size(); ++i) {
      for (const char* token : kBanned) {
        if (HasToken(code[i], token)) {
          Add(unit, findings, i, name(),
              std::string("'") + token +
                  "' is banned: route randomness through the seedable "
                  "juggler::Rng (common/random.h) so runs are reproducible");
          break;  // One finding per line is enough.
        }
      }
    }
  }
};

class IostreamInHeaderPass final : public Pass {
 public:
  const char* name() const override { return "iostream-in-header"; }
  void Run(const FileUnit& unit, const TreeContext&,
           std::vector<Finding>* findings) const override {
    if (!InSrc(unit) || !IsHeader(unit.rel_path)) return;
    const std::vector<std::string>& code = unit.code_lines;
    for (size_t i = 0; i < code.size(); ++i) {
      if (code[i].find("#include") != std::string::npos &&
          code[i].find("<iostream>") != std::string::npos) {
        Add(unit, findings, i, name(),
            "library headers must not include <iostream> (static "
            "initializer in every TU); use <ostream> or <cstdio>");
      }
    }
  }
};

class NakedNewPass final : public Pass {
 public:
  const char* name() const override { return "naked-new"; }
  void Run(const FileUnit& unit, const TreeContext&,
           std::vector<Finding>* findings) const override {
    if (!InSrc(unit)) return;
    const std::vector<std::string>& code = unit.code_lines;
    // Last non-space char before position `pos` of line `i`, looking through
    // preceding lines (a deleted member's `=` can sit on the previous line).
    const auto prev_char = [&code](size_t i, size_t pos) -> char {
      char c = PrevNonSpace(code[i], pos);
      while (c == '\0' && i > 0) {
        --i;
        c = PrevNonSpace(code[i], code[i].size());
      }
      return c;
    };
    for (size_t i = 0; i < code.size(); ++i) {
      const std::string& line = code[i];
      if (size_t pos = FindToken(line, "new"); pos != std::string::npos) {
        Add(unit, findings, i, name(),
            "naked 'new' is banned in src/; use std::make_unique / "
            "std::make_shared");
      }
      for (size_t pos = FindToken(line, "delete"); pos != std::string::npos;
           pos = FindToken(line, "delete", pos + 1)) {
        if (prev_char(i, pos) == '=') continue;  // `= delete;` member.
        Add(unit, findings, i, name(),
            "naked 'delete' is banned in src/; owning pointers must be "
            "smart pointers");
        break;
      }
    }
  }
};

class RawSyncPrimitivePass final : public Pass {
 public:
  const char* name() const override { return "raw-sync-primitive"; }
  void Run(const FileUnit& unit, const TreeContext&,
           std::vector<Finding>* findings) const override {
    if (!StartsWith(unit.rel_path, "src/service/") && !InNet(unit)) return;
    static const char* const kBanned[] = {
        "std::mutex",          "std::lock_guard",  "std::unique_lock",
        "std::scoped_lock",    "std::shared_mutex", "std::condition_variable",
        "std::condition_variable_any",
    };
    const std::vector<std::string>& code = unit.code_lines;
    for (size_t i = 0; i < code.size(); ++i) {
      for (const char* token : kBanned) {
        if (HasToken(code[i], token)) {
          Add(unit, findings, i, name(),
              std::string(token) +
                  " is banned in src/service/ and src/net/: use the "
                  "annotated Mutex / MutexLock / CondVar from "
                  "common/mutex.h so -Wthread-safety can verify lock "
                  "discipline");
          break;
        }
      }
    }
  }
};

class RawSocketPass final : public Pass {
 public:
  const char* name() const override { return "raw-socket"; }
  void Run(const FileUnit& unit, const TreeContext&,
           std::vector<Finding>* findings) const override {
    if (!InSrc(unit) || InNet(unit)) return;
    // Everything the net subsystem wraps. `bind`/`connect`/`listen` are
    // deliberately absent (std::bind and API names would false-positive);
    // a transport that listens still needs `socket`, which does fire.
    static const char* const kBanned[] = {
        "socket",     "accept",        "accept4",   "send",
        "recv",       "sendto",        "recvfrom",  "sendmsg",
        "recvmsg",    "setsockopt",    "getsockopt", "epoll_create1",
        "epoll_ctl",  "epoll_wait",
    };
    const std::vector<std::string>& code = unit.code_lines;
    for (size_t i = 0; i < code.size(); ++i) {
      for (const char* token : kBanned) {
        if (HasToken(code[i], token)) {
          Add(unit, findings, i, name(),
              std::string("'") + token +
                  "' is banned in src/ outside src/net/: all socket I/O "
                  "goes through the net subsystem (src/net/socket_util.h, "
                  "HttpServer) so non-blocking/EINTR/SIGPIPE handling "
                  "lives in one audited place");
          break;
        }
      }
    }
  }
};

class UncheckedParsePass final : public Pass {
 public:
  const char* name() const override { return "unchecked-parse"; }
  void Run(const FileUnit& unit, const TreeContext&,
           std::vector<Finding>* findings) const override {
    // The surfaces that parse untrusted bytes: the HTTP/JSON tier and the
    // model-artifact loader (serialization + the plan grammar it embeds).
    const bool parses_untrusted =
        InNet(unit) || StartsWith(unit.rel_path, "src/core/serialization") ||
        StartsWith(unit.rel_path, "src/minispark/cache_plan");
    if (!parses_untrusted) return;
    // Every one of these either ignores overflow (atoi family), needs a
    // manual errno dance nobody gets right inline (strto* family), or throws
    // (sto* family) — three different failure modes for the same job.
    static const char* const kBanned[] = {
        "atoi",   "atol",   "atoll",   "atof",    "strtol", "strtoul",
        "strtoll", "strtoull", "strtod", "strtof", "strtold", "stoi",
        "stol",   "stoll",  "stoul",   "stoull",  "stof",   "stod",
        "stold",  "sscanf",
    };
    const std::vector<std::string>& code = unit.code_lines;
    for (size_t i = 0; i < code.size(); ++i) {
      for (const char* token : kBanned) {
        if (HasToken(code[i], token)) {
          Add(unit, findings, i, name(),
              std::string("'") + token +
                  "' is banned on untrusted-byte surfaces (src/net/ and "
                  "the artifact loader): use ParseUnsigned / "
                  "ParseFiniteDouble from common/parse.h, which reject "
                  "overflow, trailing garbage, and non-finite values");
          break;
        }
      }
    }
  }
};

class UnannotatedMutexPass final : public Pass {
 public:
  const char* name() const override { return "unannotated-mutex"; }
  void Run(const FileUnit& unit, const TreeContext&,
           std::vector<Finding>* findings) const override {
    if (!InSrc(unit) || !IsHeader(unit.rel_path)) return;
    const std::vector<std::string>& code = unit.code_lines;
    for (const std::string& line : code) {
      if (HasToken(line, "GUARDED_BY") || HasToken(line, "PT_GUARDED_BY")) {
        return;
      }
    }
    for (size_t i = 0; i < code.size(); ++i) {
      const std::string& line = code[i];
      // A mutex *data member* declaration: "Mutex name_;" or "mutable Mutex
      // name;", possibly preceded by indentation.
      size_t pos = FindToken(line, "Mutex");
      if (pos == std::string::npos) pos = FindToken(line, "std::mutex");
      if (pos == std::string::npos) continue;
      const std::string rest = line.substr(pos);
      // Require "<type> <identifier> ;" shape to skip parameters/usages, and
      // skip reference/pointer members (non-owning; the pointee's home file
      // carries the annotations).
      std::istringstream tokens(rest);
      std::string type, mname;
      tokens >> type >> mname;
      if (mname.empty() || mname.back() != ';') continue;
      if (type.back() == '&' || type.back() == '*' || mname.front() == '&' ||
          mname.front() == '*') {
        continue;
      }
      Add(unit, findings, i, name(),
          "mutex member in a header with no GUARDED_BY annotations: "
          "declare what this lock protects (see "
          "common/thread_annotations.h)");
    }
  }
};

class IncludeGuardPass final : public Pass {
 public:
  const char* name() const override { return "include-guard"; }
  void Run(const FileUnit& unit, const TreeContext&,
           std::vector<Finding>* findings) const override {
    if (!IsHeader(unit.rel_path)) return;
    const std::vector<std::string>& code = unit.code_lines;
    const std::string want = CanonicalGuard(unit.rel_path);
    int ifndef_line = -1;
    std::string got;
    for (size_t i = 0; i < code.size(); ++i) {
      const std::string& line = code[i];
      if (line.find("#pragma") != std::string::npos &&
          HasToken(line, "once")) {
        Add(unit, findings, i, name(),
            "#pragma once is banned; use the canonical include guard " + want);
        return;
      }
      if (ifndef_line < 0) {
        const size_t pos = line.find("#ifndef");
        if (pos != std::string::npos) {
          ifndef_line = static_cast<int>(i);
          std::istringstream tokens(line.substr(pos + 7));
          tokens >> got;
        }
      }
    }
    if (ifndef_line < 0) {
      Add(unit, findings, 0, name(),
          "header has no include guard; expected " + want);
      return;
    }
    if (got != want) {
      Add(unit, findings, static_cast<size_t>(ifndef_line), name(),
          "include guard '" + got + "' does not match canonical '" + want +
              "'");
      return;
    }
    // The #define must follow immediately (allowing one blank line).
    const size_t limit =
        std::min(code.size(), static_cast<size_t>(ifndef_line) + 3);
    for (size_t i = static_cast<size_t>(ifndef_line) + 1; i < limit; ++i) {
      if (code[i].find("#define") != std::string::npos &&
          HasToken(code[i], want)) {
        return;
      }
    }
    Add(unit, findings, static_cast<size_t>(ifndef_line), name(),
        "#ifndef " + want + " is not followed by '#define " + want + "'");
  }
};

class BlockingUnderLockPass final : public Pass {
 public:
  const char* name() const override { return "blocking-under-lock"; }
  void Run(const FileUnit& unit, const TreeContext&,
           std::vector<Finding>* findings) const override {
    // Repo-wide: tests and benches hold the same locks the library does.
    // Everything here either parks the thread (sleep family), performs I/O
    // that can block indefinitely (syscalls, streams), or is a repo entry
    // point that does one of those internally. CondVar::Wait is deliberately
    // NOT here: it releases the mutex while blocked.
    static const char* const kBanned[] = {
        // Thread parking.
        "sleep", "usleep", "nanosleep", "sleep_for", "sleep_until",
        // Blocking syscalls (poll/select/connect/accept/recv/send family).
        "poll", "select", "epoll_wait", "connect", "accept", "accept4",
        "recv", "recvfrom", "recvmsg", "send", "sendto", "sendmsg",
        "fsync", "fdatasync", "system", "popen",
        // File I/O entry points.
        "fopen", "ifstream", "ofstream", "fstream",
        // Repo blocking entry points: RPC round-trips and registry file I/O.
        "Call", "CallAny", "Broadcast", "Dial", "Resolve", "Lookup",
        "Refresh", "ForwardRecommend",
    };
    const auto is_banned = [](const std::string& ident) {
      for (const char* token : kBanned) {
        if (ident == token) return true;
      }
      return false;
    };

    const std::vector<std::string>& code = unit.code_lines;
    int depth = 0;
    std::vector<int> lock_depths;  // Brace depth at each live MutexLock.
    for (size_t i = 0; i < code.size(); ++i) {
      const std::string& line = code[i];
      bool flagged_this_line = false;
      for (size_t pos = 0; pos < line.size(); ++pos) {
        const char c = line[pos];
        if (c == '{') {
          ++depth;
        } else if (c == '}') {
          --depth;
          while (!lock_depths.empty() && lock_depths.back() > depth) {
            lock_depths.pop_back();
          }
        } else if (IsIdentStart(line, pos)) {
          const size_t end = IdentEnd(line, pos);
          const std::string ident = line.substr(pos, end - pos);
          if (ident == "MutexLock") {
            lock_depths.push_back(depth);
          } else if (!lock_depths.empty() && !flagged_this_line &&
                     is_banned(ident)) {
            Add(unit, findings, i, name(),
                "'" + ident +
                    "' while a MutexLock is live in this scope: blocking "
                    "calls (sleep/syscall/RPC/Resolve/file I/O) must run "
                    "with the lock released — copy state out, unlock, then "
                    "block (escape: NOLINT(blocking-under-lock))");
            flagged_this_line = true;
          }
          pos = end - 1;
        }
      }
    }
  }
};

class LockInDestructorPass final : public Pass {
 public:
  const char* name() const override { return "lock-in-destructor"; }
  void Run(const FileUnit& unit, const TreeContext&,
           std::vector<Finding>* findings) const override {
    // A destructor that takes a lock is a lifetime bug factory: destruction
    // order is the one place C++ runs code after "no more references" was
    // decided. Destructors should hand off to an explicit Stop()/Shutdown().
    static const char* const kBanned[] = {
        "MutexLock", "Lock",        "TryLock",
        "lock_guard", "unique_lock", "scoped_lock",
    };
    const auto is_banned = [](const std::string& ident) {
      for (const char* token : kBanned) {
        if (ident == token) return true;
      }
      return false;
    };

    const std::vector<std::string>& code = unit.code_lines;
    enum class Mode { kScan, kAwaitBody, kInDtor };
    Mode mode = Mode::kScan;
    int depth = 0;       // Brace depth, tracked everywhere.
    int body_depth = 0;  // Depth of the destructor body while kInDtor.
    for (size_t i = 0; i < code.size(); ++i) {
      const std::string& line = code[i];
      for (size_t pos = 0; pos < line.size(); ++pos) {
        const char c = line[pos];
        if (c == '{') {
          ++depth;
          if (mode == Mode::kAwaitBody) {
            mode = Mode::kInDtor;
            body_depth = depth;
          }
          continue;
        }
        if (c == '}') {
          --depth;
          if (mode == Mode::kInDtor && depth < body_depth) mode = Mode::kScan;
          continue;
        }
        if (mode == Mode::kAwaitBody) {
          // Between "~Name(" and its body: a ';' first means this was only a
          // declaration (~Foo();, = default;) or an expression — not a body.
          if (c == ';') mode = Mode::kScan;
          continue;
        }
        if (c == '~' && pos + 1 < line.size() && IsIdentChar(line[pos + 1])) {
          // "~Name" followed (after optional spaces) by '(' on the same
          // line: destructor-shaped.
          const size_t end = IdentEnd(line, pos + 1);
          size_t after = end;
          while (after < line.size() && line[after] == ' ') ++after;
          if (after < line.size() && line[after] == '(') {
            mode = Mode::kAwaitBody;
            pos = after;  // Continue scanning after the '('.
          }
          continue;
        }
        if (mode == Mode::kInDtor && IsIdentStart(line, pos)) {
          const size_t end = IdentEnd(line, pos);
          const std::string ident = line.substr(pos, end - pos);
          if (is_banned(ident)) {
            Add(unit, findings, i, name(),
                "'" + ident +
                    "' inside a destructor: destructors must not acquire "
                    "locks (destruction races the last unlock; move the "
                    "locking into an explicit Stop()/Shutdown() the owner "
                    "calls first; escape: NOLINT(lock-in-destructor))");
          }
          pos = end - 1;
        }
      }
    }
  }
};

class CondvarWaitPredicatePass final : public Pass {
 public:
  const char* name() const override { return "condvar-wait-predicate"; }
  void Run(const FileUnit& unit, const TreeContext&,
           std::vector<Finding>* findings) const override {
    // A condvar wait without a guarding loop is wrong twice over: spurious
    // wakeups are allowed by the standard, and a notify can land between the
    // condition check and the wait.
    static const char* const kWaitNames[] = {"Wait", "wait"};
    const auto has_loop_keyword = [](const std::string& line) {
      return HasToken(line, "while") || HasToken(line, "do") ||
             HasToken(line, "for");
    };
    const std::vector<std::string>& code = unit.code_lines;
    for (size_t i = 0; i < code.size(); ++i) {
      const std::string& line = code[i];
      for (const char* wait_name : kWaitNames) {
        for (size_t pos = FindToken(line, wait_name); pos != std::string::npos;
             pos = FindToken(line, wait_name, pos + 1)) {
          // Member-call shape only (`.wait(` / `->Wait(`): skips
          // declarations and unrelated free functions.
          if (pos == 0 || (line[pos - 1] != '.' && line[pos - 1] != '>')) {
            continue;
          }
          size_t after = pos + std::string(wait_name).size();
          while (after < line.size() && line[after] == ' ') ++after;
          if (after >= line.size() || line[after] != '(') continue;
          // Argument text up to the matching ')' (or end of line).
          int parens = 1;
          size_t arg_end = after + 1;
          while (arg_end < line.size() && parens > 0) {
            if (line[arg_end] == '(') ++parens;
            if (line[arg_end] == ')') --parens;
            ++arg_end;
          }
          const std::string args =
              line.substr(after + 1, arg_end - after - (parens == 0 ? 2 : 1));
          // A comma means a predicate (or a timeout overload) is present; an
          // empty argument list is not a condvar wait (futures, threads).
          if (args.find(',') != std::string::npos) continue;
          if (args.find_first_not_of(' ') == std::string::npos) continue;
          // Single-argument wait: require a guarding loop on this line or
          // one of the two preceding non-blank lines.
          bool guarded = has_loop_keyword(line.substr(0, pos));
          for (size_t back = i, seen = 0; !guarded && back > 0 && seen < 2;) {
            --back;
            if (code[back].find_first_not_of(' ') == std::string::npos) {
              continue;
            }
            ++seen;
            guarded = has_loop_keyword(code[back]);
          }
          if (!guarded) {
            Add(unit, findings, i, name(),
                "condition-variable wait with no predicate and no guarding "
                "while/do loop in sight: spurious wakeups and lost "
                "notifies make an unguarded wait a hang; write `while "
                "(!cond) cv.Wait(mu);` or pass a predicate (escape: "
                "NOLINT(condvar-wait-predicate))");
          }
        }
      }
    }
  }
};

}  // namespace

const std::vector<const Pass*>& LegacyPasses() {
  static const std::vector<const Pass*>* passes = [] {
    return new std::vector<const Pass*>{
        new NondeterminismPass,       new IostreamInHeaderPass,
        new NakedNewPass,             new RawSyncPrimitivePass,
        new RawSocketPass,            new UncheckedParsePass,
        new UnannotatedMutexPass,     new IncludeGuardPass,
        new BlockingUnderLockPass,    new LockInDestructorPass,
        new CondvarWaitPredicatePass,
    };
  }();
  return *passes;
}

}  // namespace juggler::analyze
