#include "tools/analyze/baseline.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace juggler::analyze {

namespace {

/// Collapses runs of whitespace to single spaces and trims both ends, so a
/// re-indent does not orphan a baseline entry.
std::string NormalizeWhitespace(const std::string& s) {
  std::string out;
  bool in_space = true;  // Leading whitespace is dropped.
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      in_space = true;
      continue;
    }
    if (in_space && !out.empty()) out.push_back(' ');
    in_space = false;
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string BaselineKey(const Finding& finding, const std::string& line_text) {
  return finding.file + "|" + finding.rule + "|" +
         NormalizeWhitespace(line_text);
}

Baseline ParseBaseline(const std::string& text) {
  Baseline baseline;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    ++baseline.entries[line.substr(first)];
  }
  return baseline;
}

std::string SerializeBaseline(const std::vector<std::string>& keys) {
  std::vector<std::string> sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  std::ostringstream out;
  out << "# juggler_analyze findings baseline. One `file|rule|line-text` "
         "key per line;\n"
         "# pre-existing findings listed here warn instead of failing. "
         "Regenerate with\n"
         "#   juggler_analyze <repo-root> --write-baseline\n"
         "# Shrinking this file is always welcome; growing it needs review, "
         "like a NOLINT.\n";
  for (const std::string& key : sorted) out << key << "\n";
  return out.str();
}

void PartitionAgainstBaseline(const std::vector<Finding>& findings,
                              const std::vector<std::string>& keys,
                              const Baseline& baseline,
                              std::vector<Finding>* baselined,
                              std::vector<Finding>* fresh) {
  std::map<std::string, int> remaining = baseline.entries;
  for (size_t i = 0; i < findings.size(); ++i) {
    auto it = remaining.find(keys[i]);
    if (it != remaining.end() && it->second > 0) {
      --it->second;
      baselined->push_back(findings[i]);
    } else {
      fresh->push_back(findings[i]);
    }
  }
}

std::map<std::string, std::set<int>> ParseChangedLines(
    const std::string& unified_diff) {
  std::map<std::string, std::set<int>> changed;
  std::istringstream in(unified_diff);
  std::string line;
  std::string current_file;
  while (std::getline(in, line)) {
    if (line.rfind("+++ ", 0) == 0) {
      std::string path = line.substr(4);
      if (path.rfind("b/", 0) == 0) path = path.substr(2);
      current_file = path == "/dev/null" ? "" : path;
      continue;
    }
    if (line.rfind("@@", 0) != 0 || current_file.empty()) continue;
    // "@@ -a[,b] +c[,d] @@": the post-image range is +c[,d].
    const size_t plus = line.find('+');
    if (plus == std::string::npos) continue;
    size_t pos = plus + 1;
    int start = 0;
    while (pos < line.size() &&
           std::isdigit(static_cast<unsigned char>(line[pos])) != 0) {
      start = start * 10 + (line[pos] - '0');
      ++pos;
    }
    int count = 1;
    if (pos < line.size() && line[pos] == ',') {
      ++pos;
      count = 0;
      while (pos < line.size() &&
             std::isdigit(static_cast<unsigned char>(line[pos])) != 0) {
        count = count * 10 + (line[pos] - '0');
        ++pos;
      }
    }
    for (int i = 0; i < count; ++i) changed[current_file].insert(start + i);
  }
  return changed;
}

}  // namespace juggler::analyze
