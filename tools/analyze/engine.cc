#include "tools/analyze/engine.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "tools/analyze/passes.h"

namespace juggler::analyze {

namespace {

namespace fs = std::filesystem;

constexpr size_t kNpos = static_cast<size_t>(-1);

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

bool IsIdent(const Token& t) { return t.kind == TokenKind::kIdentifier; }

bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

/// Keywords that can never be a function or variable name in the positions
/// the scanner probes.
bool IsStatementKeyword(const std::string& s) {
  static const char* const kWords[] = {
      "if",     "while",   "for",      "switch",  "do",      "return",
      "else",   "case",    "default",  "break",   "continue", "goto",
      "new",    "delete",  "throw",    "using",   "typedef", "namespace",
      "class",  "struct",  "enum",     "union",   "template", "public",
      "private", "protected", "friend", "extern", "operator", "sizeof",
      "alignof", "co_return", "co_await", "co_yield", "catch",
  };
  for (const char* w : kWords) {
    if (s == w) return true;
  }
  return false;
}

bool IsStorageOrCv(const std::string& s) {
  return s == "const" || s == "constexpr" || s == "static" ||
         s == "mutable" || s == "volatile" || s == "inline" ||
         s == "register" || s == "thread_local" || s == "consteval" ||
         s == "constinit";
}

/// Index of the matching ')' for the '(' at `open`, or kNpos. Preprocessor
/// tokens are transparent.
size_t MatchParen(const std::vector<Token>& toks, size_t open) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (IsPunct(toks[i], "(")) ++depth;
    if (IsPunct(toks[i], ")")) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return kNpos;
}

/// Index of the matching '}' for the '{' at `open`, or kNpos.
size_t MatchBrace(const std::vector<Token>& toks, size_t open) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (IsPunct(toks[i], "{")) ++depth;
    if (IsPunct(toks[i], "}")) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return kNpos;
}

/// From the ':' that opens a constructor member-init list, returns the index
/// of the body '{', or kNpos when the shape is not an init list.
size_t SkipInitList(const std::vector<Token>& toks, size_t colon) {
  size_t i = colon + 1;
  const size_t n = toks.size();
  while (i < n) {
    // Entry: qualified-ident ( ... ) or qualified-ident { ... }.
    while (i < n && (IsIdent(toks[i]) || IsPunct(toks[i], "::"))) ++i;
    if (i >= n) return kNpos;
    if (IsPunct(toks[i], "(")) {
      i = MatchParen(toks, i);
    } else if (IsPunct(toks[i], "{")) {
      i = MatchBrace(toks, i);
    } else {
      return kNpos;
    }
    if (i == kNpos || i + 1 >= n) return kNpos;
    ++i;
    if (IsPunct(toks[i], ",")) {
      ++i;
      continue;
    }
    if (IsPunct(toks[i], "{")) return i;  // The body.
    return kNpos;
  }
  return kNpos;
}

std::string JoinTokens(const std::vector<Token>& toks, size_t begin,
                       size_t end, size_t skip = kNpos) {
  std::string out;
  for (size_t i = begin; i < end; ++i) {
    if (i == skip) continue;
    if (toks[i].kind == TokenKind::kString) {
      out += "\"\" ";
      continue;
    }
    if (!out.empty() && out.back() != ':' && toks[i].text != "::") {
      out += ' ';
    }
    out += toks[i].text;
  }
  return out;
}

/// Parses the parameter list between `open` ('(') and `close` (')').
std::vector<Variable> ParseParams(const std::vector<Token>& toks, size_t open,
                                  size_t close) {
  std::vector<Variable> params;
  std::vector<std::pair<size_t, size_t>> chunks;
  size_t start = open + 1;
  int paren = 0;
  int angle = 0;
  for (size_t i = open + 1; i < close; ++i) {
    const Token& t = toks[i];
    if (t.kind == TokenKind::kPunct) {
      if (t.text == "(" || t.text == "[" || t.text == "{") ++paren;
      if (t.text == ")" || t.text == "]" || t.text == "}") --paren;
      if (t.text == "<") ++angle;
      if (t.text == ">") angle = angle > 0 ? angle - 1 : 0;
      if (t.text == ">>") angle = angle > 1 ? angle - 2 : 0;
      if (t.text == "," && paren == 0 && angle == 0) {
        chunks.emplace_back(start, i);
        start = i + 1;
      }
    }
  }
  if (start < close) chunks.emplace_back(start, close);
  for (const auto& [begin, end] : chunks) {
    // Drop a default argument.
    size_t stop = end;
    for (size_t i = begin; i < end; ++i) {
      if (IsPunct(toks[i], "=")) {
        stop = i;
        break;
      }
    }
    // Name = last identifier; needs at least a type token before it.
    size_t name_idx = kNpos;
    int idents = 0;
    for (size_t i = begin; i < stop; ++i) {
      if (IsIdent(toks[i])) {
        ++idents;
        name_idx = i;
      }
    }
    if (idents < 2 || name_idx == kNpos) continue;  // Unnamed or "void".
    params.push_back(Variable{JoinTokens(toks, begin, stop, name_idx),
                              toks[name_idx].text});
  }
  return params;
}

/// Attempts to match a variable declaration starting at `i` (statement
/// start). On success fills `var` and returns the index of the terminator
/// token ('=', ';', '(', '{', '['); else returns kNpos.
size_t TryMatchDecl(const std::vector<Token>& toks, size_t i, size_t end,
                    Variable* var) {
  // Leading storage/cv words.
  while (i < end && IsIdent(toks[i]) && IsStorageOrCv(toks[i].text)) ++i;
  if (i >= end || !IsIdent(toks[i]) || IsStatementKeyword(toks[i].text)) {
    return kNpos;
  }
  const size_t type_begin = i;
  size_t last_ident = kNpos;
  int idents = 0;
  while (i < end) {
    const Token& t = toks[i];
    if (IsIdent(t)) {
      if (IsStatementKeyword(t.text)) return kNpos;
      last_ident = i;
      ++idents;
      ++i;
      continue;
    }
    if (IsPunct(t, "::") || IsPunct(t, "*") || IsPunct(t, "&") ||
        IsPunct(t, "&&")) {
      ++i;
      continue;
    }
    if (IsPunct(t, "<")) {
      // Balanced template group; abort on statement punctuation (so a
      // comparison like `i < n;` never swallows the rest of the line).
      int depth = 0;
      size_t j = i;
      size_t guard = 0;
      for (; j < end && guard < 64; ++j, ++guard) {
        if (IsPunct(toks[j], "<")) ++depth;
        if (IsPunct(toks[j], ">")) --depth;
        if (IsPunct(toks[j], ">>")) depth -= 2;
        if (IsPunct(toks[j], ";") || IsPunct(toks[j], "{") ||
            IsPunct(toks[j], "}")) {
          return kNpos;
        }
        if (depth <= 0) break;
      }
      if (j >= end || guard >= 64) return kNpos;
      i = j + 1;
      continue;
    }
    break;
  }
  if (i >= end || idents < 2 || last_ident == kNpos ||
      last_ident != i - 1) {  // The run must *end* with the name.
    return kNpos;
  }
  const Token& term = toks[i];
  if (!(IsPunct(term, "=") || IsPunct(term, ";") || IsPunct(term, "(") ||
        IsPunct(term, "{") || IsPunct(term, "["))) {
    return kNpos;
  }
  var->type = JoinTokens(toks, type_begin, last_ident);
  var->name = toks[last_ident].text;
  return i;
}

void ScanLocals(const std::vector<Token>& toks, size_t begin, size_t end,
                std::vector<Variable>* locals) {
  bool stmt_start = true;
  size_t i = begin;
  while (i < end) {
    const Token& t = toks[i];
    if (t.kind == TokenKind::kPunct &&
        (t.text == ";" || t.text == "{" || t.text == "}")) {
      stmt_start = true;
      ++i;
      continue;
    }
    if (t.kind == TokenKind::kPreprocessor) {
      stmt_start = true;
      ++i;
      continue;
    }
    if (stmt_start) {
      if (IsIdent(t, "for") && i + 1 < end && IsPunct(toks[i + 1], "(")) {
        i += 2;  // The init clause of a for is a statement start.
        continue;
      }
      Variable var;
      const size_t term = TryMatchDecl(toks, i, end, &var);
      if (term != kNpos) {
        locals->push_back(std::move(var));
        i = term;
        stmt_start = false;
        continue;
      }
      stmt_start = false;
    }
    ++i;
  }
}

}  // namespace

const std::string* FunctionInfo::TypeOf(const std::string& ident) const {
  for (const Variable& v : params) {
    if (v.name == ident) return &v.type;
  }
  for (const Variable& v : locals) {
    if (v.name == ident) return &v.type;
  }
  return nullptr;
}

std::vector<FunctionInfo> ScanFunctions(const std::vector<Token>& toks) {
  std::vector<FunctionInfo> out;
  const size_t n = toks.size();
  size_t i = 0;
  while (i < n) {
    if (!IsIdent(toks[i]) || IsStatementKeyword(toks[i].text)) {
      ++i;
      continue;
    }
    if (i + 1 >= n || !IsPunct(toks[i + 1], "(")) {
      ++i;
      continue;
    }
    // `class CAPABILITY("mutex") Mutex {`: an annotation macro directly after
    // class/struct is not a function.
    if (i > 0 && IsIdent(toks[i - 1]) &&
        (toks[i - 1].text == "class" || toks[i - 1].text == "struct" ||
         toks[i - 1].text == "enum" || toks[i - 1].text == "union")) {
      ++i;
      continue;
    }
    const size_t close = MatchParen(toks, i + 1);
    if (close == kNpos) {
      ++i;
      continue;
    }
    // Walk qualifiers after the parameter list looking for a body.
    size_t j = close + 1;
    std::vector<std::string> requires_held;
    bool is_def = false;
    while (j < n) {
      const Token& t = toks[j];
      if (t.kind == TokenKind::kPunct) {
        if (t.text == "{") {
          is_def = true;
          break;
        }
        if (t.text == ":") {  // Constructor member-init list.
          const size_t body = SkipInitList(toks, j);
          if (body != kNpos) {
            j = body;
            is_def = true;
          }
          break;
        }
        if (t.text == "->" || t.text == "::" || t.text == "&" ||
            t.text == "&&" || t.text == "*" || t.text == "<" ||
            t.text == ">") {
          ++j;
          continue;
        }
        break;  // ';', '=', ',', ')' ...: declaration or expression.
      }
      if (IsIdent(t)) {
        if (j + 1 < n && IsPunct(toks[j + 1], "(")) {
          // Annotation macro with arguments (REQUIRES, ACQUIRE, EXCLUDES...).
          const size_t macro_close = MatchParen(toks, j + 1);
          if (macro_close == kNpos) break;
          if (t.text == "REQUIRES" || t.text == "REQUIRES_SHARED") {
            for (size_t k = j + 2; k < macro_close; ++k) {
              if (IsIdent(toks[k])) requires_held.push_back(toks[k].text);
            }
          }
          j = macro_close + 1;
          continue;
        }
        ++j;  // const / noexcept / override / final / try / macro.
        continue;
      }
      if (t.kind == TokenKind::kNumber ||
          t.kind == TokenKind::kPreprocessor) {
        ++j;
        continue;
      }
      break;
    }
    if (!is_def) {
      i = close + 1;
      continue;
    }
    const size_t body_open = j;
    const size_t body_close = MatchBrace(toks, body_open);
    if (body_close == kNpos) {
      i = close + 1;
      continue;
    }
    FunctionInfo fn;
    fn.name = toks[i].text;
    if (i > 0 && IsPunct(toks[i - 1], "~")) fn.name = "~" + fn.name;
    const size_t before = fn.name[0] == '~' ? i - 1 : i;
    if (before >= 2 && IsPunct(toks[before - 1], "::") &&
        IsIdent(toks[before - 2])) {
      fn.qualifier = toks[before - 2].text;
    }
    fn.line = toks[i].line;
    fn.body_begin = body_open;
    fn.body_end = body_close + 1;
    fn.params = ParseParams(toks, i + 1, close);
    fn.requires_held = std::move(requires_held);
    ScanLocals(toks, body_open + 1, body_close, &fn.locals);
    out.push_back(std::move(fn));
    i = body_close + 1;
  }
  return out;
}

std::string FileStem(const std::string& rel_path) {
  const size_t dot = rel_path.rfind('.');
  if (dot == std::string::npos) return rel_path;
  return rel_path.substr(0, dot);
}

void CollectTreeContext(const FileUnit& unit, TreeContext* ctx) {
  const std::string stem = FileStem(unit.rel_path);
  const std::vector<Token>& toks = unit.tokens;
  const size_t n = toks.size();
  for (size_t i = 0; i < n; ++i) {
    const Token& t = toks[i];
    if (!IsIdent(t)) continue;

    if ((t.text == "GUARDED_BY" || t.text == "PT_GUARDED_BY") && i > 0 &&
        IsIdent(toks[i - 1]) && i + 1 < n && IsPunct(toks[i + 1], "(")) {
      const size_t close = MatchParen(toks, i + 1);
      if (close == kNpos) continue;
      // Mutex = last identifier of the argument ("mu_", "shard.mu").
      std::string mu;
      for (size_t k = i + 2; k < close; ++k) {
        if (IsIdent(toks[k])) mu = toks[k].text;
      }
      if (!mu.empty()) {
        ctx->guarded_fields[stem][toks[i - 1].text] = mu;
      }
      continue;
    }

    if ((t.text == "REQUIRES" || t.text == "REQUIRES_SHARED") && i + 1 < n &&
        IsPunct(toks[i + 1], "(")) {
      const size_t close = MatchParen(toks, i + 1);
      if (close == kNpos) continue;
      // Find the declaration's name: walk back over qualifier tokens to the
      // ')' that closes its parameter list, then to the '(' and the name.
      size_t back = i;
      while (back > 0 &&
             !(IsPunct(toks[back - 1], ")") || IsPunct(toks[back - 1], ";") ||
               IsPunct(toks[back - 1], "}") || IsPunct(toks[back - 1], "{"))) {
        --back;
      }
      if (back == 0 || !IsPunct(toks[back - 1], ")")) continue;
      // Match backwards to the '('.
      int depth = 0;
      size_t open = back - 1;
      bool found = false;
      for (size_t k = back - 1; k != kNpos && k > 0; --k) {
        if (IsPunct(toks[k], ")")) ++depth;
        if (IsPunct(toks[k], "(")) {
          --depth;
          if (depth == 0) {
            open = k;
            found = true;
            break;
          }
        }
      }
      if (!found || open == 0 || !IsIdent(toks[open - 1])) continue;
      const std::string method = toks[open - 1].text;
      for (size_t k = i + 2; k < close; ++k) {
        if (IsIdent(toks[k])) {
          ctx->requires_methods[stem][method].insert(toks[k].text);
        }
      }
      continue;
    }

    if ((t.text == "class" || t.text == "struct") && i + 1 < n) {
      // The name may follow an annotation macro: class SCOPED_CAPABILITY X.
      size_t j = i + 1;
      std::string last_ident;
      while (j < n && !IsPunct(toks[j], "{") && !IsPunct(toks[j], ";") &&
             !IsPunct(toks[j], ":") && !IsPunct(toks[j], ")") &&
             !IsPunct(toks[j], ",") && !IsPunct(toks[j], ">")) {
        if (IsIdent(toks[j])) last_ident = toks[j].text;
        if (IsPunct(toks[j], "(")) {  // Annotation args.
          const size_t c = MatchParen(toks, j);
          if (c == kNpos) break;
          j = c;
        }
        ++j;
      }
      if (j < n && IsPunct(toks[j], "{") && !last_ident.empty()) {
        ctx->class_names[stem].insert(last_ident);
      }
      continue;
    }

    if (t.text == "StatusOr" || t.text == "optional") {
      // `StatusOr<...> Name(` declares/defines a StatusOr-returning
      // function named Name.
      if (i + 1 >= n || !IsPunct(toks[i + 1], "<")) continue;
      int depth = 0;
      size_t j = i + 1;
      size_t guard = 0;
      for (; j < n && guard < 64; ++j, ++guard) {
        if (IsPunct(toks[j], "<")) ++depth;
        if (IsPunct(toks[j], ">")) --depth;
        if (IsPunct(toks[j], ">>")) depth -= 2;
        if (IsPunct(toks[j], ";") || IsPunct(toks[j], "{")) break;
        if (depth <= 0) break;
      }
      if (j >= n || guard >= 64 || depth > 0) continue;
      if (j + 2 < n && IsIdent(toks[j + 1]) && IsPunct(toks[j + 2], "(")) {
        if (t.text == "StatusOr") {
          ctx->statusor_returning.insert(toks[j + 1].text);
        } else {
          ctx->optional_returning.insert(toks[j + 1].text);
        }
      }
      continue;
    }
  }
}

bool IsSuppressed(const std::string& raw_line) {
  return raw_line.find("NOLINT") != std::string::npos ||
         raw_line.find("lint:ignore") != std::string::npos;
}

namespace {

std::vector<std::string> SplitLines(const std::string& content) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : content) {
    if (c == '\n') {
      lines.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) lines.push_back(std::move(current));
  return lines;
}

void SortFindings(std::vector<Finding>* findings) {
  std::sort(findings->begin(), findings->end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
}

void RunPasses(const FileUnit& unit, const TreeContext& ctx, bool legacy_only,
               std::vector<Finding>* findings) {
  for (const Pass* pass : AllPasses()) {
    const std::string name = pass->name();
    const bool is_new = name.rfind("analyze-", 0) == 0;
    if (legacy_only && is_new) continue;
    pass->Run(unit, ctx, findings);
  }
  // Suppression and sorting are engine duties so no pass re-implements them.
  findings->erase(
      std::remove_if(findings->begin(), findings->end(),
                     [&](const Finding& f) {
                       const size_t idx = static_cast<size_t>(f.line) - 1;
                       return f.line > 0 && idx < unit.raw_lines.size() &&
                              IsSuppressed(unit.raw_lines[idx]);
                     }),
      findings->end());
  SortFindings(findings);
}

std::vector<Finding> AnalyzePath(const std::string& rel_path,
                                 const std::string& content,
                                 const TreeContext* tree_ctx,
                                 bool legacy_only) {
  const FileUnit unit = BuildFileUnit(rel_path, content);
  TreeContext local_ctx;
  if (tree_ctx == nullptr) {
    CollectTreeContext(unit, &local_ctx);
    tree_ctx = &local_ctx;
  }
  std::vector<Finding> findings;
  RunPasses(unit, *tree_ctx, legacy_only, &findings);
  return findings;
}

std::vector<Finding> WalkTree(const std::string& root, bool legacy_only) {
  static const char* const kRoots[] = {"src",   "tools",    "tests",
                                       "bench", "examples", "fuzz"};
  // Pass 1: read every file, build units, and collect the cross-file
  // context (guarded fields, REQUIRES methods, StatusOr-returning names).
  std::vector<FileUnit> units;
  TreeContext ctx;
  for (const char* top : kRoots) {
    const fs::path dir = fs::path(root) / top;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir, ec)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cc" && ext != ".cpp") continue;
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream buffer;
      buffer << in.rdbuf();
      const std::string rel =
          fs::relative(entry.path(), root, ec).generic_string();
      units.push_back(BuildFileUnit(rel, buffer.str()));
      CollectTreeContext(units.back(), &ctx);
    }
  }
  // Pass 2: run the passes with the full context in view.
  std::vector<Finding> findings;
  for (const FileUnit& unit : units) {
    std::vector<Finding> file_findings;
    RunPasses(unit, ctx, legacy_only, &file_findings);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  SortFindings(&findings);
  return findings;
}

}  // namespace

FileUnit BuildFileUnit(const std::string& rel_path,
                       const std::string& content) {
  FileUnit unit;
  unit.rel_path = rel_path;
  unit.raw_lines = SplitLines(content);
  unit.code_lines = SplitLines(StripCommentsAndStrings(content));
  unit.tokens = Lex(content);
  unit.functions = ScanFunctions(unit.tokens);
  return unit;
}

std::vector<Finding> AnalyzeFile(const std::string& rel_path,
                                 const std::string& content,
                                 const TreeContext* tree_ctx) {
  return AnalyzePath(rel_path, content, tree_ctx, /*legacy_only=*/false);
}

std::vector<Finding> AnalyzeTree(const std::string& root) {
  return WalkTree(root, /*legacy_only=*/false);
}

std::string CanonicalGuard(const std::string& rel_path) {
  std::string path = rel_path;
  if (path.rfind("src/", 0) == 0) path = path.substr(4);
  std::string guard = "JUGGLER_";
  for (char c : path) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      guard.push_back(
          static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    } else {
      guard.push_back('_');
    }
  }
  guard.push_back('_');
  return guard;
}

const std::vector<const Pass*>& AllPasses() {
  static const std::vector<const Pass*>* all = [] {
    auto* v = new std::vector<const Pass*>(LegacyPasses());
    const auto& dataflow = DataflowPasses();
    v->insert(v->end(), dataflow.begin(), dataflow.end());
    return v;
  }();
  return *all;
}

std::string FormatFinding(const Finding& f) {
  std::ostringstream out;
  out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message;
  return out.str();
}

// --- Legacy entry points (tools/lint compatibility) -------------------------

std::vector<Finding> LintFile(const std::string& rel_path,
                              const std::string& content) {
  return AnalyzePath(rel_path, content, nullptr, /*legacy_only=*/true);
}

std::vector<Finding> LintTree(const std::string& root) {
  return WalkTree(root, /*legacy_only=*/true);
}

}  // namespace juggler::analyze
