// juggler_lint: repo-specific static checks the compiler can't express.
//
// Usage:
//   juggler_lint <repo-root>     lint src/, tools/, tests/, bench/, examples/
//
// Prints one `file:line: [rule] message` per finding and exits nonzero when
// anything fires, so it slots directly into CI and the `lint` CMake target:
//   cmake --build build --target lint
//
// The rules themselves live in lint_rules.cc (unit-tested by
// tests/lint_test.cc); this file is only argument handling and output.

#include <cstdio>
#include <string>
#include <vector>

#include "tools/lint/lint_rules.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <repo-root>\n", argv[0]);
    return 2;
  }
  const std::string root = argv[1];
  const std::vector<juggler::lint::Finding> findings =
      juggler::lint::LintTree(root);
  for (const auto& finding : findings) {
    std::fprintf(stdout, "%s\n",
                 juggler::lint::FormatFinding(finding).c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "juggler_lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
