#ifndef JUGGLER_TOOLS_LINT_LINT_RULES_H_
#define JUGGLER_TOOLS_LINT_LINT_RULES_H_

#include <string>
#include <vector>

namespace juggler::lint {

/// One lint violation: `file:line: [rule] message`.
struct Finding {
  std::string file;  ///< Repo-relative path, '/' separators.
  int line = 0;      ///< 1-based.
  std::string rule;
  std::string message;
};

/// \brief Repo-specific rules the compiler cannot enforce.
///
/// `juggler_lint` is a line/token scanner, not a parser: it strips comments
/// and string literals, then matches tokens with identifier-boundary checks.
/// That is deliberate — every rule below is phrasable at the token level, the
/// tool builds in ~a second with no dependencies, and it runs on every file
/// of the tree in milliseconds (the `lint` CMake target and the CI lint job).
///
/// Rules (rule name — scope — what it catches):
///  - `nondeterminism` — src/ except common/random.h — `rand()`, `srand()`,
///    `std::random_device`, `std::mt19937*`, `std::default_random_engine`.
///    All stochastic behaviour in the simulator must flow through the
///    seedable `juggler::Rng` (common/random.h) so runs are reproducible;
///    this matters most in src/minispark/, where a stray `rand()` would make
///    profiled schedules non-replayable.
///  - `iostream-in-header` — src/ headers — `#include <iostream>`. Pulls a
///    static iostream initializer into every translation unit; headers use
///    `<ostream>`/`<cstdio>` instead.
///  - `naked-new` — src/ — `new` / `delete` outside smart-pointer factories
///    (`= delete` member declarations are recognized and allowed).
///  - `raw-sync-primitive` — src/service/ and src/net/ — `std::mutex`,
///    `std::lock_guard`, `std::unique_lock`, `std::scoped_lock`,
///    `std::shared_mutex`, `std::condition_variable`. The concurrent tiers
///    must use the annotated wrappers from common/mutex.h so clang's
///    -Wthread-safety analysis can verify lock discipline.
///  - `raw-socket` — src/ except src/net/ — `socket`, `accept`, `accept4`,
///    `send`, `recv`, `sendto`, `recvfrom`, `sendmsg`, `recvmsg`,
///    `setsockopt`, `getsockopt`, `epoll_create1`, `epoll_ctl`,
///    `epoll_wait`. All socket I/O goes through the net subsystem
///    (src/net/socket_util.h and HttpServer), which centralizes
///    non-blocking, EINTR, and SIGPIPE handling; tests/bench/examples may
///    open sockets freely.
///  - `unchecked-parse` — src/net/, src/core/serialization*, and
///    src/minispark/cache_plan* (the surfaces that parse untrusted bytes) —
///    the `atoi`/`atof` family (silently ignores overflow), the `strtol`/
///    `strtod` family (needs a manual errno protocol that is never written
///    correctly inline), `std::stoi`-style throwing conversions, and
///    `sscanf`. Text-to-number conversion on these surfaces goes through
///    `ParseUnsigned` / `ParseFiniteDouble` (common/parse.h), which reject
///    overflow, trailing garbage, and non-finite values in one audited
///    place. (common/parse.h itself is outside the scope and is where the
///    one legitimate `strtod` call lives.)
///  - `unannotated-mutex` — src/ headers — a `Mutex`/`std::mutex` data
///    member in a file that never uses `GUARDED_BY`: a mutex that guards
///    nothing the analysis can see is a hole in the static checking.
///  - `include-guard` — all scanned headers — `#pragma once` (banned; the
///    repo uses guards) and include guards that do not match the canonical
///    `JUGGLER_<PATH>_H_` form (path minus a leading `src/`, uppercased,
///    separators mapped to `_`).
///  - `blocking-under-lock` — repo-wide — a blocking call (the sleep family,
///    poll/select/connect/accept/recv/send syscalls, file-stream opens,
///    `system`/`popen`) or a repo blocking entry point (`Call`, `CallAny`,
///    `Broadcast`, `Dial`, `Resolve`, `Lookup`, `Refresh`,
///    `ForwardRecommend`) while a `MutexLock` is live in the same scope.
///    Copy state out, unlock, then block. `CondVar::Wait` is exempt: it
///    releases the mutex while blocked.
///  - `lock-in-destructor` — repo-wide — `MutexLock`, `.Lock()`,
///    `.TryLock()`, or a std lock adapter inside a destructor body.
///    Destructors race the last unlock and run during static teardown;
///    locking belongs in an explicit Stop()/Shutdown() the owner calls.
///  - `condvar-wait-predicate` — repo-wide — a member-call `wait(x)` /
///    `Wait(x)` with a single argument, no predicate, and no guarding
///    `while`/`do`/`for` on the same or the two preceding lines. Spurious
///    wakeups make an unguarded wait a hang.
///
/// Suppression: a line containing `NOLINT` or `lint:ignore` (typically in a
/// trailing comment, with the reason) is exempt from line-scoped rules.
/// Deliberate lock-order exceptions use the documented form
/// `NOLINT(deadlock-order)` so they can be audited as a class — e.g. the
/// seeded-inversion fixtures in tests/deadlock_test.cc, which exist to prove
/// the runtime detector (common/lock_diag.h) fires.
std::vector<Finding> LintFile(const std::string& rel_path,
                              const std::string& content);

/// Walks `root`'s source directories (src, tools, tests, bench, examples),
/// lints every .h/.cc/.cpp file, and returns all findings sorted by path.
/// Build directories and anything outside those five roots are ignored.
std::vector<Finding> LintTree(const std::string& root);

/// Canonical include-guard macro for a repo-relative header path
/// (e.g. "src/common/status.h" -> "JUGGLER_COMMON_STATUS_H_").
std::string CanonicalGuard(const std::string& rel_path);

/// "file:line: [rule] message" — the single format both the CLI and tests
/// rely on.
std::string FormatFinding(const Finding& f);

}  // namespace juggler::lint

#endif  // JUGGLER_TOOLS_LINT_LINT_RULES_H_
