#include "tools/lint/lint_rules.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace juggler::lint {

namespace {

namespace fs = std::filesystem;

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Replaces comment bodies and string/char-literal contents with spaces,
/// preserving line structure, so token matching never fires inside either.
std::string StripCommentsAndStrings(const std::string& content) {
  std::string out = content;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == quote) {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& content) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : content) {
    if (c == '\n') {
      lines.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) lines.push_back(std::move(current));
  return lines;
}

/// Position of `token` in `line` with identifier-boundary checks on both
/// ends, or npos. `token` may itself contain non-identifier chars ("::").
size_t FindToken(const std::string& line, const std::string& token,
                 size_t from = 0) {
  for (size_t pos = line.find(token, from); pos != std::string::npos;
       pos = line.find(token, pos + 1)) {
    const bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    const size_t end = pos + token.size();
    const bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (left_ok && right_ok) return pos;
  }
  return std::string::npos;
}

bool HasToken(const std::string& line, const std::string& token) {
  return FindToken(line, token) != std::string::npos;
}

/// True when the raw (un-stripped) line carries a suppression marker.
bool IsSuppressed(const std::string& raw_line) {
  return raw_line.find("NOLINT") != std::string::npos ||
         raw_line.find("lint:ignore") != std::string::npos;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsHeader(const std::string& rel_path) { return EndsWith(rel_path, ".h"); }

/// Last non-space character before `pos`, or '\0'.
char PrevNonSpace(const std::string& line, size_t pos) {
  while (pos > 0) {
    --pos;
    if (!std::isspace(static_cast<unsigned char>(line[pos]))) return line[pos];
  }
  return '\0';
}

struct LineCtx {
  const std::string& rel_path;
  const std::vector<std::string>& raw;
  std::vector<Finding>* findings;

  void Add(size_t i, std::string rule, std::string message) const {
    if (IsSuppressed(raw[i])) return;
    findings->push_back(Finding{rel_path, static_cast<int>(i + 1),
                                std::move(rule), std::move(message)});
  }
};

void CheckNondeterminism(const LineCtx& ctx,
                         const std::vector<std::string>& code) {
  static const char* const kBanned[] = {
      "rand",        "srand",        "rand_r",
      "random_device", "mt19937",    "mt19937_64",
      "default_random_engine",
  };
  for (size_t i = 0; i < code.size(); ++i) {
    for (const char* token : kBanned) {
      if (HasToken(code[i], token)) {
        ctx.Add(i, "nondeterminism",
                std::string("'") + token +
                    "' is banned: route randomness through the seedable "
                    "juggler::Rng (common/random.h) so runs are reproducible");
        break;  // One finding per line is enough.
      }
    }
  }
}

void CheckIostreamInHeader(const LineCtx& ctx,
                           const std::vector<std::string>& code) {
  for (size_t i = 0; i < code.size(); ++i) {
    if (code[i].find("#include") != std::string::npos &&
        code[i].find("<iostream>") != std::string::npos) {
      ctx.Add(i, "iostream-in-header",
              "library headers must not include <iostream> (static "
              "initializer in every TU); use <ostream> or <cstdio>");
    }
  }
}

void CheckNakedNew(const LineCtx& ctx, const std::vector<std::string>& code) {
  // Last non-space char before position `pos` of line `i`, looking through
  // preceding lines (a deleted member's `=` can sit on the previous line).
  const auto prev_char = [&code](size_t i, size_t pos) -> char {
    char c = PrevNonSpace(code[i], pos);
    while (c == '\0' && i > 0) {
      --i;
      c = PrevNonSpace(code[i], code[i].size());
    }
    return c;
  };
  for (size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    if (size_t pos = FindToken(line, "new"); pos != std::string::npos) {
      ctx.Add(i, "naked-new",
              "naked 'new' is banned in src/; use std::make_unique / "
              "std::make_shared");
    }
    for (size_t pos = FindToken(line, "delete"); pos != std::string::npos;
         pos = FindToken(line, "delete", pos + 1)) {
      if (prev_char(i, pos) == '=') continue;  // `= delete;` member.
      ctx.Add(i, "naked-new",
              "naked 'delete' is banned in src/; owning pointers must be "
              "smart pointers");
      break;
    }
  }
}

void CheckRawSyncPrimitives(const LineCtx& ctx,
                            const std::vector<std::string>& code) {
  static const char* const kBanned[] = {
      "std::mutex",          "std::lock_guard",  "std::unique_lock",
      "std::scoped_lock",    "std::shared_mutex", "std::condition_variable",
      "std::condition_variable_any",
  };
  for (size_t i = 0; i < code.size(); ++i) {
    for (const char* token : kBanned) {
      // "std::mutex" must not also fire on "std::mutex"-prefixed longer
      // names; FindToken's boundary check handles that ("std::mutex" inside
      // "std::mutex_t" fails the right-boundary test).
      if (HasToken(code[i], token)) {
        ctx.Add(i, "raw-sync-primitive",
                std::string(token) +
                    " is banned in src/service/ and src/net/: use the "
                    "annotated Mutex / MutexLock / CondVar from "
                    "common/mutex.h so -Wthread-safety can verify lock "
                    "discipline");
        break;
      }
    }
  }
}

void CheckRawSockets(const LineCtx& ctx,
                     const std::vector<std::string>& code) {
  // Everything the net subsystem wraps. `bind`/`connect`/`listen` are
  // deliberately absent (std::bind and API names would false-positive);
  // a transport that listens still needs `socket`, which does fire.
  static const char* const kBanned[] = {
      "socket",     "accept",        "accept4",   "send",
      "recv",       "sendto",        "recvfrom",  "sendmsg",
      "recvmsg",    "setsockopt",    "getsockopt", "epoll_create1",
      "epoll_ctl",  "epoll_wait",
  };
  for (size_t i = 0; i < code.size(); ++i) {
    for (const char* token : kBanned) {
      if (HasToken(code[i], token)) {
        ctx.Add(i, "raw-socket",
                std::string("'") + token +
                    "' is banned in src/ outside src/net/: all socket I/O "
                    "goes through the net subsystem (src/net/socket_util.h, "
                    "HttpServer) so non-blocking/EINTR/SIGPIPE handling "
                    "lives in one audited place");
        break;
      }
    }
  }
}

void CheckUncheckedParse(const LineCtx& ctx,
                         const std::vector<std::string>& code) {
  // Every one of these either ignores overflow (atoi family), needs a
  // manual errno dance nobody gets right inline (strto* family), or throws
  // (sto* family) — three different failure modes for the same job. The
  // untrusted-byte surfaces route all text-to-number conversion through the
  // two audited helpers instead.
  static const char* const kBanned[] = {
      "atoi",   "atol",   "atoll",   "atof",    "strtol", "strtoul",
      "strtoll", "strtoull", "strtod", "strtof", "strtold", "stoi",
      "stol",   "stoll",  "stoul",   "stoull",  "stof",   "stod",
      "stold",  "sscanf",
  };
  for (size_t i = 0; i < code.size(); ++i) {
    for (const char* token : kBanned) {
      if (HasToken(code[i], token)) {
        ctx.Add(i, "unchecked-parse",
                std::string("'") + token +
                    "' is banned on untrusted-byte surfaces (src/net/ and "
                    "the artifact loader): use ParseUnsigned / "
                    "ParseFiniteDouble from common/parse.h, which reject "
                    "overflow, trailing garbage, and non-finite values");
        break;
      }
    }
  }
}

void CheckUnannotatedMutex(const LineCtx& ctx,
                           const std::vector<std::string>& code) {
  bool has_guarded_by = false;
  for (const std::string& line : code) {
    if (HasToken(line, "GUARDED_BY") || HasToken(line, "PT_GUARDED_BY")) {
      has_guarded_by = true;
      break;
    }
  }
  if (has_guarded_by) return;
  for (size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    // A mutex *data member* declaration: "Mutex name_;" or "mutable Mutex
    // name;", possibly preceded by indentation. Local variables inside
    // header-inlined functions rarely declare mutexes; a false positive is
    // suppressible with a commented NOLINT.
    size_t pos = FindToken(line, "Mutex");
    if (pos == std::string::npos) pos = FindToken(line, "std::mutex");
    if (pos == std::string::npos) continue;
    const std::string rest = line.substr(pos);
    // Require "<type> <identifier> ;" shape to skip parameters/usages, and
    // skip reference/pointer members (non-owning; the pointee's home file
    // carries the annotations).
    std::istringstream tokens(rest);
    std::string type, name;
    tokens >> type >> name;
    if (name.empty() || name.back() != ';') continue;
    if (type.back() == '&' || type.back() == '*' || name.front() == '&' ||
        name.front() == '*') {
      continue;
    }
    ctx.Add(i, "unannotated-mutex",
            "mutex member in a header with no GUARDED_BY annotations: "
            "declare what this lock protects (see "
            "common/thread_annotations.h)");
  }
}

/// Extracts the identifier starting at `pos` (which must be an identifier
/// start position) and returns one-past-its-end.
size_t IdentEnd(const std::string& line, size_t pos) {
  size_t end = pos;
  while (end < line.size() && IsIdentChar(line[end])) ++end;
  return end;
}

/// True when an identifier token starts at `pos` (boundary on the left).
bool IsIdentStart(const std::string& line, size_t pos) {
  return IsIdentChar(line[pos]) && (pos == 0 || !IsIdentChar(line[pos - 1]));
}

void CheckBlockingUnderLock(const LineCtx& ctx,
                            const std::vector<std::string>& code) {
  // Everything here either parks the thread (sleep family), performs I/O
  // that can block indefinitely (syscalls, streams), or is a repo entry
  // point that does one of those internally (RPC Call / registry Resolve /
  // Refresh do file or network I/O). Holding a MutexLock across any of them
  // turns every other thread that wants the lock into a hostage of the slow
  // operation — and under the lock-rank discipline it is also how lock-order
  // cycles sneak in. CondVar::Wait is deliberately NOT here: it releases
  // the mutex while blocked, which is the whole point of a condvar.
  static const char* const kBanned[] = {
      // Thread parking.
      "sleep", "usleep", "nanosleep", "sleep_for", "sleep_until",
      // Blocking syscalls (poll/select/connect/accept/recv/send family).
      "poll", "select", "epoll_wait", "connect", "accept", "accept4",
      "recv", "recvfrom", "recvmsg", "send", "sendto", "sendmsg",
      "fsync", "fdatasync", "system", "popen",
      // File I/O entry points.
      "fopen", "ifstream", "ofstream", "fstream",
      // Repo blocking entry points: RPC round-trips and registry file I/O.
      "Call", "CallAny", "Broadcast", "Dial", "Resolve", "Lookup", "Refresh",
      "ForwardRecommend",
  };
  const auto is_banned = [](const std::string& ident) {
    for (const char* token : kBanned) {
      if (ident == token) return true;
    }
    return false;
  };

  int depth = 0;
  std::vector<int> lock_depths;  // Brace depth at each live MutexLock.
  for (size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    bool flagged_this_line = false;
    for (size_t pos = 0; pos < line.size(); ++pos) {
      const char c = line[pos];
      if (c == '{') {
        ++depth;
      } else if (c == '}') {
        --depth;
        while (!lock_depths.empty() && lock_depths.back() > depth) {
          lock_depths.pop_back();
        }
      } else if (IsIdentStart(line, pos)) {
        const size_t end = IdentEnd(line, pos);
        const std::string ident = line.substr(pos, end - pos);
        if (ident == "MutexLock") {
          lock_depths.push_back(depth);
        } else if (!lock_depths.empty() && !flagged_this_line &&
                   is_banned(ident)) {
          ctx.Add(i, "blocking-under-lock",
                  "'" + ident +
                      "' while a MutexLock is live in this scope: blocking "
                      "calls (sleep/syscall/RPC/Resolve/file I/O) must run "
                      "with the lock released — copy state out, unlock, then "
                      "block (escape: NOLINT(blocking-under-lock))");
          flagged_this_line = true;
        }
        pos = end - 1;
      }
    }
  }
}

void CheckLockInDestructor(const LineCtx& ctx,
                           const std::vector<std::string>& code) {
  // A destructor that takes a lock is a lifetime bug factory: destruction
  // order is the one place C++ runs code after "no more references" was
  // decided, so the lock (or what it guards) may already be gone, and a
  // static-destruction-order unlock can outlive the diagnostics runtime.
  // Destructors should hand off to an explicit Stop()/Shutdown() that the
  // owner calls while everything is alive (the repo's servers all do).
  static const char* const kBanned[] = {
      "MutexLock", "Lock",        "TryLock",
      "lock_guard", "unique_lock", "scoped_lock",
  };
  const auto is_banned = [](const std::string& ident) {
    for (const char* token : kBanned) {
      if (ident == token) return true;
    }
    return false;
  };

  enum class Mode { kScan, kAwaitBody, kInDtor };
  Mode mode = Mode::kScan;
  int depth = 0;       // Brace depth, tracked everywhere.
  int body_depth = 0;  // Depth of the destructor body while kInDtor.
  for (size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    for (size_t pos = 0; pos < line.size(); ++pos) {
      const char c = line[pos];
      if (c == '{') {
        ++depth;
        if (mode == Mode::kAwaitBody) {
          mode = Mode::kInDtor;
          body_depth = depth;
        }
        continue;
      }
      if (c == '}') {
        --depth;
        if (mode == Mode::kInDtor && depth < body_depth) mode = Mode::kScan;
        continue;
      }
      if (mode == Mode::kAwaitBody) {
        // Between "~Name(" and its body: a ';' first means this was only a
        // declaration (~Foo();, = default;) or an expression — not a body.
        if (c == ';') mode = Mode::kScan;
        continue;
      }
      if (c == '~' && pos + 1 < line.size() && IsIdentChar(line[pos + 1])) {
        // "~Name" followed (after optional spaces) by '(' on the same line:
        // destructor-shaped. Whether it has a body is decided by what comes
        // first afterwards, '{' (definition) or ';' (declaration/expr).
        const size_t end = IdentEnd(line, pos + 1);
        size_t after = end;
        while (after < line.size() && line[after] == ' ') ++after;
        if (after < line.size() && line[after] == '(') {
          mode = Mode::kAwaitBody;
          pos = after;  // Continue scanning after the '('.
        }
        continue;
      }
      if (mode == Mode::kInDtor && IsIdentStart(line, pos)) {
        const size_t end = IdentEnd(line, pos);
        const std::string ident = line.substr(pos, end - pos);
        if (is_banned(ident)) {
          ctx.Add(i, "lock-in-destructor",
                  "'" + ident +
                      "' inside a destructor: destructors must not acquire "
                      "locks (destruction races the last unlock; move the "
                      "locking into an explicit Stop()/Shutdown() the owner "
                      "calls first; escape: NOLINT(lock-in-destructor))");
        }
        pos = end - 1;
      }
    }
  }
}

void CheckCondvarWaitPredicate(const LineCtx& ctx,
                               const std::vector<std::string>& code) {
  // A condvar wait without a guarding loop is wrong twice over: spurious
  // wakeups are allowed by the standard, and a notify can land between the
  // condition check and the wait. Callers must either pass a predicate
  // (std::condition_variable::wait(lock, pred)) or wrap the repo's
  // CondVar::Wait in `while (!cond) cv.Wait(mu);`.
  static const char* const kWaitNames[] = {"Wait", "wait"};
  const auto has_loop_keyword = [](const std::string& line) {
    return HasToken(line, "while") || HasToken(line, "do") ||
           HasToken(line, "for");
  };
  for (size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    for (const char* name : kWaitNames) {
      for (size_t pos = FindToken(line, name); pos != std::string::npos;
           pos = FindToken(line, name, pos + 1)) {
        // Member-call shape only (`.wait(` / `->Wait(`): skips declarations
        // and unrelated free functions.
        if (pos == 0 || (line[pos - 1] != '.' && line[pos - 1] != '>')) {
          continue;
        }
        size_t after = pos + std::string(name).size();
        while (after < line.size() && line[after] == ' ') ++after;
        if (after >= line.size() || line[after] != '(') continue;
        // Argument text up to the matching ')' (or end of line).
        int parens = 1;
        size_t arg_end = after + 1;
        while (arg_end < line.size() && parens > 0) {
          if (line[arg_end] == '(') ++parens;
          if (line[arg_end] == ')') --parens;
          ++arg_end;
        }
        const std::string args =
            line.substr(after + 1, arg_end - after - (parens == 0 ? 2 : 1));
        // A comma means a predicate (or a timeout overload) is present; an
        // empty argument list is not a condvar wait (futures, threads).
        if (args.find(',') != std::string::npos) continue;
        if (args.find_first_not_of(' ') == std::string::npos) continue;
        // Single-argument wait: require a guarding loop on this line or one
        // of the two preceding non-blank lines.
        bool guarded = has_loop_keyword(line.substr(0, pos));
        for (size_t back = i, seen = 0; !guarded && back > 0 && seen < 2;) {
          --back;
          if (code[back].find_first_not_of(' ') == std::string::npos) continue;
          ++seen;
          guarded = has_loop_keyword(code[back]);
        }
        if (!guarded) {
          ctx.Add(i, "condvar-wait-predicate",
                  "condition-variable wait with no predicate and no guarding "
                  "while/do loop in sight: spurious wakeups and lost "
                  "notifies make an unguarded wait a hang; write `while "
                  "(!cond) cv.Wait(mu);` or pass a predicate (escape: "
                  "NOLINT(condvar-wait-predicate))");
        }
      }
    }
  }
}

void CheckIncludeGuard(const LineCtx& ctx, const std::vector<std::string>& code,
                       const std::string& rel_path) {
  const std::string want = CanonicalGuard(rel_path);
  int ifndef_line = -1;
  std::string got;
  for (size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    if (line.find("#pragma") != std::string::npos &&
        HasToken(line, "once")) {
      ctx.Add(i, "include-guard",
              "#pragma once is banned; use the canonical include guard " +
                  want);
      return;
    }
    if (ifndef_line < 0) {
      const size_t pos = line.find("#ifndef");
      if (pos != std::string::npos) {
        ifndef_line = static_cast<int>(i);
        std::istringstream tokens(line.substr(pos + 7));
        tokens >> got;
      }
    }
  }
  if (ifndef_line < 0) {
    ctx.Add(0, "include-guard", "header has no include guard; expected " + want);
    return;
  }
  if (got != want) {
    ctx.Add(static_cast<size_t>(ifndef_line), "include-guard",
            "include guard '" + got + "' does not match canonical '" + want +
                "'");
    return;
  }
  // The #define must follow immediately (allowing one blank line).
  const size_t limit =
      std::min(code.size(), static_cast<size_t>(ifndef_line) + 3);
  for (size_t i = static_cast<size_t>(ifndef_line) + 1; i < limit; ++i) {
    if (code[i].find("#define") != std::string::npos &&
        HasToken(code[i], want)) {
      return;
    }
  }
  ctx.Add(static_cast<size_t>(ifndef_line), "include-guard",
          "#ifndef " + want + " is not followed by '#define " + want + "'");
}

}  // namespace

std::string CanonicalGuard(const std::string& rel_path) {
  std::string path = rel_path;
  if (StartsWith(path, "src/")) path = path.substr(4);
  std::string guard = "JUGGLER_";
  for (char c : path) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      guard.push_back(static_cast<char>(
          std::toupper(static_cast<unsigned char>(c))));
    } else {
      guard.push_back('_');
    }
  }
  guard.push_back('_');
  return guard;
}

std::vector<Finding> LintFile(const std::string& rel_path,
                              const std::string& content) {
  std::vector<Finding> findings;
  const std::vector<std::string> raw = SplitLines(content);
  const std::vector<std::string> code =
      SplitLines(StripCommentsAndStrings(content));
  const LineCtx ctx{rel_path, raw, &findings};

  const bool in_src = StartsWith(rel_path, "src/");
  const bool in_service = StartsWith(rel_path, "src/service/");
  const bool in_net = StartsWith(rel_path, "src/net/");
  const bool is_rng_home = rel_path == "src/common/random.h";
  const bool is_header = IsHeader(rel_path);

  if (in_src && !is_rng_home) CheckNondeterminism(ctx, code);
  if (in_src && is_header) CheckIostreamInHeader(ctx, code);
  if (in_src) CheckNakedNew(ctx, code);
  if (in_service || in_net) CheckRawSyncPrimitives(ctx, code);
  if (in_src && !in_net) CheckRawSockets(ctx, code);
  // The surfaces that parse untrusted bytes: the HTTP/JSON tier and the
  // model-artifact loader (serialization + the plan grammar it embeds).
  const bool parses_untrusted =
      in_net || StartsWith(rel_path, "src/core/serialization") ||
      StartsWith(rel_path, "src/minispark/cache_plan");
  if (parses_untrusted) CheckUncheckedParse(ctx, code);
  if (in_src && is_header) CheckUnannotatedMutex(ctx, code);
  if (is_header) CheckIncludeGuard(ctx, code, rel_path);
  // Concurrency-order rules, enforced repo-wide (tests and benches hold the
  // same locks the library does). The one sanctioned predicate-less wait —
  // CondVar::Wait's internal cv_.wait — carries a commented NOLINT in
  // common/mutex.h. `NOLINT(deadlock-order)` is the documented escape for
  // a deliberate lock-order exception (e.g. the seeded-inversion fixtures
  // in tests/deadlock_test.cc); like all suppressions it must state why.
  CheckBlockingUnderLock(ctx, code);
  CheckLockInDestructor(ctx, code);
  CheckCondvarWaitPredicate(ctx, code);
  return findings;
}

std::vector<Finding> LintTree(const std::string& root) {
  static const char* const kRoots[] = {"src",      "tools", "tests",
                                       "bench",    "examples", "fuzz"};
  std::vector<Finding> findings;
  for (const char* top : kRoots) {
    const fs::path dir = fs::path(root) / top;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir, ec)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cc" && ext != ".cpp") continue;
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream buffer;
      buffer << in.rdbuf();
      const std::string rel =
          fs::relative(entry.path(), root, ec).generic_string();
      std::vector<Finding> file_findings = LintFile(rel, buffer.str());
      findings.insert(findings.end(),
                      std::make_move_iterator(file_findings.begin()),
                      std::make_move_iterator(file_findings.end()));
    }
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              return a.line < b.line;
            });
  return findings;
}

std::string FormatFinding(const Finding& f) {
  std::ostringstream out;
  out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message;
  return out.str();
}

}  // namespace juggler::lint
