#ifndef JUGGLER_BENCH_BENCH_COMMON_H_
#define JUGGLER_BENCH_BENCH_COMMON_H_

// Shared helpers for the evaluation harnesses. Each bench binary regenerates
// one table or figure of the paper: same rows/series, with a
// "paper vs measured" note wherever the paper states a number. Absolute
// values come from the simulator, so only shapes/ratios are expected to
// match.

#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "common/table_printer.h"
#include "common/units.h"
#include "core/juggler.h"
#include "minispark/engine.h"
#include "workloads/workloads.h"

namespace juggler::bench {

/// All evaluation runs use the paper's 12-node ceiling.
inline constexpr int kMaxMachines = 12;

/// Deterministic-but-noisy run options for "actual runs": small jitter plus
/// rare stragglers, seeded for reproducibility.
inline minispark::RunOptions ActualRunOptions(uint64_t seed = 42) {
  minispark::RunOptions o;
  o.seed = seed;
  o.noise_sigma = 0.02;
  o.straggler_prob = 0.01;
  return o;
}

/// The offline-training configuration used by every bench, mirroring §7.1:
/// one sample run + 9 size experiments on the small training node, one
/// memory-calibration run, and 9 time experiments per schedule at
/// 0.4x-1x of the paper's parameters.
inline core::JugglerConfig PaperTrainingConfig(const workloads::Workload& w) {
  core::JugglerConfig config;
  config.sample_params = minispark::AppParams{2000, 500, 3};
  config.size_grid = core::TrainingGrid{{1000, 2000, 4000}, {250, 500, 1000}, 2};
  config.time_grid = core::TrainingGrid{
      {0.4 * w.paper_params.examples, 0.7 * w.paper_params.examples,
       w.paper_params.examples},
      {0.4 * w.paper_params.features, 0.7 * w.paper_params.features,
       w.paper_params.features},
      w.paper_params.iterations};
  config.memory_reference = w.paper_params;
  config.machine_type = minispark::PaperCluster(1);
  config.run_options = ActualRunOptions();
  return config;
}

/// One point of a machine sweep.
struct SweepPoint {
  int machines = 0;
  double time_ms = 0.0;
  double cost_machine_min = 0.0;
};

/// Runs `plan` on 1..max machines (paper Figure 9 methodology).
inline std::vector<SweepPoint> SweepMachines(
    const workloads::Workload& w, const minispark::AppParams& params,
    const minispark::CachePlan& plan, int max_machines = kMaxMachines,
    uint64_t seed = 42) {
  std::vector<SweepPoint> out;
  for (int m = 1; m <= max_machines; ++m) {
    minispark::Engine engine(ActualRunOptions(seed + static_cast<uint64_t>(m)));
    auto r = engine.Run(w.make(params), minispark::PaperCluster(m), plan);
    if (!r.ok()) {
      std::fprintf(stderr, "run failed: %s\n", r.status().ToString().c_str());
      std::exit(1);
    }
    out.push_back(SweepPoint{m, r->duration_ms, r->CostMachineMinutes()});
  }
  return out;
}

inline const SweepPoint& CheapestPoint(const std::vector<SweepPoint>& sweep) {
  return *std::min_element(sweep.begin(), sweep.end(),
                           [](const SweepPoint& a, const SweepPoint& b) {
                             return a.cost_machine_min < b.cost_machine_min;
                           });
}

/// Trains Juggler for a workload, exiting on failure (benches are batch
/// programs; any failure is fatal and loud).
inline core::TrainingResult TrainOrDie(const workloads::Workload& w) {
  auto training = core::TrainJuggler(w.name, w.make, PaperTrainingConfig(w));
  if (!training.ok()) {
    std::fprintf(stderr, "training %s failed: %s\n", w.name.c_str(),
                 training.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(training).value();
}

/// Prints the standard "paper vs measured" comparison line.
inline void PaperVsMeasured(const std::string& what, const std::string& paper,
                            const std::string& measured) {
  std::printf("  [paper-vs-measured] %s: paper %s | measured %s\n",
              what.c_str(), paper.c_str(), measured.c_str());
}

}  // namespace juggler::bench

#endif  // JUGGLER_BENCH_BENCH_COMMON_H_
