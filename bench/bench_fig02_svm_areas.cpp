// Figure 2 — Selection of a suitable cluster configuration (SVM).
//
// Sweeps the developer-cached SVM over 1-12 machines and reports the three
// areas: A (eviction-dominated; fewer machines cannot hold the 35.7 GB
// cached dataset), C (the minimum-cost junction, 7 machines in the paper)
// and B (coordination overhead grows with machines). Overlays Ernest's
// prediction, which is accurate in area B only and recommends a single
// machine as cheapest (paper: actual 1-machine cost is 16x its prediction).

#include <iostream>

#include "baselines/ernest.h"
#include "bench/bench_common.h"

using namespace juggler;        // NOLINT
using namespace juggler::bench; // NOLINT

int main() {
  std::printf("=== Figure 2: SVM time/cost vs #machines, with Ernest ===\n\n");
  const auto w = workloads::GetWorkload("svm").value();
  const auto params = w.paper_params;
  const auto app = w.make(params);

  auto ernest = baselines::TrainErnest(
      w.make, params, minispark::PaperCluster(1),
      baselines::ErnestExperimentDesign(kMaxMachines), ActualRunOptions(7));
  if (!ernest.ok()) {
    std::fprintf(stderr, "ernest training failed: %s\n",
                 ernest.status().ToString().c_str());
    return 1;
  }

  TablePrinter table({"#Machines", "Time (min)", "Cost (mach-min)",
                      "Evicted partitions", "Ernest pred. (min)",
                      "Ernest err"});
  std::vector<SweepPoint> sweep;
  std::vector<double> evicted;
  for (int m = 1; m <= kMaxMachines; ++m) {
    minispark::Engine engine(ActualRunOptions(42 + static_cast<uint64_t>(m)));
    auto r = engine.RunDefault(app, minispark::PaperCluster(m));
    if (!r.ok()) return 1;
    sweep.push_back(SweepPoint{m, r->duration_ms, r->CostMachineMinutes()});
    double ev = 0.0;
    for (const auto& [id, st] : r->dataset_stats) {
      if (st.distinct_cached > 0) {
        ev = static_cast<double>(st.distinct_evicted) /
             static_cast<double>(st.distinct_cached);
      }
    }
    evicted.push_back(ev);
    const double pred = ernest->Predict(1.0, m);
    table.AddRow({std::to_string(m), TablePrinter::Num(ToMinutes(r->duration_ms)),
                  TablePrinter::Num(r->CostMachineMinutes()),
                  TablePrinter::Percent(ev),
                  TablePrinter::Num(ToMinutes(pred)),
                  TablePrinter::Percent(std::fabs(pred - r->duration_ms) /
                                        r->duration_ms)});
  }
  table.Print(std::cout);

  const auto& best = CheapestPoint(sweep);
  std::printf("\nArea C (minimum cost): %d machines\n", best.machines);
  PaperVsMeasured("optimal cluster configuration", "7 machines",
                  std::to_string(best.machines) + " machines");

  std::string ev_row;
  for (int i = 0; i < 7 && i < static_cast<int>(evicted.size()); ++i) {
    ev_row += TablePrinter::Num(100 * evicted[static_cast<size_t>(i)], 0) +
              (i < 6 ? ", " : "");
  }
  PaperVsMeasured("area-A evicted partitions for 1..7 machines (%)",
                  "83, 65, 48, 30, 13, 8, 0", ev_row);

  const double one_machine_actual = sweep.front().time_ms;
  const double one_machine_pred = ernest->Predict(1.0, 1);
  PaperVsMeasured(
      "actual 1-machine cost vs Ernest's prediction", "16x higher",
      TablePrinter::Num(one_machine_actual / one_machine_pred, 1) + "x higher");
  PaperVsMeasured(
      "Ernest's minimum-cost recommendation", "1 machine",
      std::to_string(ernest->CheapestMachines(kMaxMachines)) + " machine(s)");

  // The 97x anecdote: a task recomputing an evicted partition vs reading a
  // cached one. Derived from the cost model at paper parameters.
  const auto& labeled = app.dataset(2);
  const auto& parsed = app.dataset(1);
  const auto& src = app.dataset(0);
  const minispark::ClusterConfig c = minispark::PaperCluster(1);
  const double cached_read = labeled.PartitionBytes() / c.cache_bandwidth;
  const double recompute = src.PartitionBytes() / c.disk_bandwidth +
                           parsed.PartitionComputeMs() +
                           labeled.PartitionComputeMs();
  PaperVsMeasured("recompute vs cached-read task time", "97x",
                  TablePrinter::Num(recompute / cached_read, 0) + "x");
  return 0;
}
