// Fault-recovery overhead sweep: what the injected Spark failure modes cost.
//
// For each workload, runs the developer schedule clean and under each fault
// kind (task failures, executor loss, plan-driven stragglers with and
// without speculation) at a fixed seed, and reports the duration overhead
// plus the recovery counters. Not a paper figure — this exercises the
// robustness layer: recovery must degrade duration, never correctness, and
// the same seed must reproduce the same row bit-for-bit.

#include <iostream>

#include "bench/bench_common.h"
#include "minispark/faults.h"

using namespace juggler;        // NOLINT
using namespace juggler::bench; // NOLINT

namespace {

struct FaultCase {
  const char* name;
  minispark::FaultSpec spec;
};

std::vector<FaultCase> FaultCases() {
  minispark::FaultSpec task_fail;
  task_fail.task_failure_prob = 0.1;
  minispark::FaultSpec executor_loss;
  executor_loss.executor_loss_prob = 0.05;
  minispark::FaultSpec straggler;
  straggler.straggler_prob = 0.1;
  straggler.straggler_factor = 6.0;
  minispark::FaultSpec straggler_no_spec = straggler;
  straggler_no_spec.speculation = false;
  return {{"task-fail p=0.1", task_fail},
          {"exec-loss p=0.05", executor_loss},
          {"straggler+spec", straggler},
          {"straggler no-spec", straggler_no_spec}};
}

}  // namespace

int main() {
  std::printf("=== Fault injection: recovery overhead by failure mode ===\n\n");
  const int machines = 4;
  const minispark::AppParams params{8000, 2000, 5};

  TablePrinter table({"Workload", "Fault", "Time (min)", "Overhead",
                      "Retried", "Stages re-exec", "Lost", "Recomputed",
                      "Spec wins"});
  for (const auto& w : workloads::AllWorkloads()) {
    minispark::RunOptions clean;
    clean.noise_sigma = 0.0;
    clean.straggler_prob = 0.0;
    const auto app = w.make(params);
    const auto cluster = minispark::PaperCluster(machines);
    const auto base = minispark::Engine(clean).RunDefault(app, cluster);
    if (!base.ok()) {
      std::fprintf(stderr, "clean run failed for %s: %s\n", w.name.c_str(),
                   base.status().ToString().c_str());
      return 1;
    }
    table.AddRow({w.name, "none", TablePrinter::Num(ToMinutes(base->duration_ms)),
                  "100 %", "0", "0", "0", "0", "0"});

    for (const FaultCase& fc : FaultCases()) {
      minispark::RunOptions faulty = clean;
      faulty.faults = fc.spec;
      faulty.faults.seed = 42;
      const auto r = minispark::Engine(faulty).RunDefault(app, cluster);
      if (!r.ok()) {
        // A typed abort is a legitimate outcome under heavy failure rates;
        // report it as a row rather than dying.
        table.AddRow({w.name, fc.name, "-", "aborted", "-", "-", "-", "-", "-"});
        continue;
      }
      table.AddRow({w.name, fc.name,
                    TablePrinter::Num(ToMinutes(r->duration_ms)),
                    TablePrinter::Percent(r->duration_ms / base->duration_ms),
                    std::to_string(r->tasks_retried),
                    std::to_string(r->stages_reexecuted),
                    std::to_string(r->partitions_lost),
                    std::to_string(r->partitions_recomputed_after_loss),
                    std::to_string(r->speculative_wins)});
    }
  }
  table.Print(std::cout);
  std::printf(
      "\nInvariant: every faulty run either completes (correct metrics, "
      "longer duration)\nor aborts with a typed error naming the exhausted "
      "task. Same seed, same row.\n");
  return 0;
}
