// Figure 1 — Selection of appropriate datasets for caching (LIR).
//
// The HiBench Linear Regression developers cache nothing, so every SGD
// iteration re-reads and re-parses the large input. Caching the parsed input
// dataset (the paper's 35.9 GB modification) cuts execution time and cost
// across every cluster size. The paper reports time dropping to 54.8 % and
// cost to 34.3 % on average over 1-12 machines.

#include <iostream>

#include "bench/bench_common.h"

using namespace juggler;        // NOLINT
using namespace juggler::bench; // NOLINT

int main() {
  std::printf("=== Figure 1: LIR with vs without caching the input ===\n\n");
  const auto w = workloads::GetWorkload("lir").value();

  // The Figure 1 modification: persist the parsed input dataset (id 1).
  const minispark::CachePlan cached{{minispark::CacheOp::Persist(1)}};

  const auto no_cache = SweepMachines(w, w.paper_params, minispark::CachePlan{});
  const auto with_cache = SweepMachines(w, w.paper_params, cached);

  TablePrinter table({"#Machines", "Time no-cache (min)", "Time cached (min)",
                      "Cost no-cache (mach-min)", "Cost cached (mach-min)",
                      "Time ratio", "Cost ratio"});
  double time_ratio_sum = 0.0;
  double cost_ratio_sum = 0.0;
  for (int i = 0; i < kMaxMachines; ++i) {
    const auto& a = no_cache[static_cast<size_t>(i)];
    const auto& b = with_cache[static_cast<size_t>(i)];
    const double tr = b.time_ms / a.time_ms;
    const double cr = b.cost_machine_min / a.cost_machine_min;
    time_ratio_sum += tr;
    cost_ratio_sum += cr;
    table.AddRow({std::to_string(a.machines), TablePrinter::Num(ToMinutes(a.time_ms)),
                  TablePrinter::Num(ToMinutes(b.time_ms)),
                  TablePrinter::Num(a.cost_machine_min),
                  TablePrinter::Num(b.cost_machine_min),
                  TablePrinter::Percent(tr), TablePrinter::Percent(cr)});
  }
  table.Print(std::cout);

  const double avg_time = time_ratio_sum / kMaxMachines;
  const double avg_cost = cost_ratio_sum / kMaxMachines;
  std::printf("\nCached dataset: %s (%s)\n",
              w.make(w.paper_params).dataset(1).name.c_str(),
              FormatBytes(w.make(w.paper_params).dataset(1).bytes).c_str());
  PaperVsMeasured("avg time with caching", "54.8 %",
                  TablePrinter::Percent(avg_time));
  PaperVsMeasured("avg cost with caching", "34.3 %",
                  TablePrinter::Percent(avg_cost));
  return 0;
}
