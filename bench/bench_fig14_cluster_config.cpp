// Figure 14 — Juggler's recommended cluster configuration vs the optimal
// one (obtained by running every schedule on 1-12 machines and taking the
// minimal cost). The paper reports optimal recommendations in 50 % of
// cases and near-optimal otherwise, with 7.3 % average extra cost.

#include <iostream>

#include "bench/bench_common.h"

using namespace juggler;        // NOLINT
using namespace juggler::bench; // NOLINT

int main() {
  std::printf("=== Figure 14: recommended vs optimal cluster configuration ===\n\n");

  TablePrinter table({"Application", "Schedule", "Recommended", "Optimal",
                      "Cost @rec", "Cost @opt", "Extra cost"});
  int optimal_hits = 0;
  int cases = 0;
  double extra_cost_sum = 0.0;

  for (const auto& w : workloads::AllWorkloads()) {
    const auto training = TrainOrDie(w);
    auto recs = training.trained.RecommendAll(w.paper_params,
                                              minispark::PaperCluster(1));
    if (!recs.ok()) return 1;

    for (const auto& rec : *recs) {
      const auto sweep = SweepMachines(w, w.paper_params, rec.plan);
      const auto& opt = CheapestPoint(sweep);
      // Recommendations are capped at the testbed's 12 machines (as the
      // paper's cluster is).
      const int rec_machines = std::clamp(rec.machines, 1, kMaxMachines);
      const auto& at_rec = sweep[static_cast<size_t>(rec_machines - 1)];
      const double extra =
          at_rec.cost_machine_min / opt.cost_machine_min - 1.0;
      if (rec_machines == opt.machines) ++optimal_hits;
      extra_cost_sum += extra;
      ++cases;
      table.AddRow({w.name, "#" + std::to_string(rec.schedule_id),
                    std::to_string(rec_machines), std::to_string(opt.machines),
                    TablePrinter::Num(at_rec.cost_machine_min),
                    TablePrinter::Num(opt.cost_machine_min),
                    TablePrinter::Percent(extra)});
    }
  }
  table.Print(std::cout);

  std::printf("\n");
  PaperVsMeasured("optimal recommendations", "50 % of cases",
                  TablePrinter::Percent(static_cast<double>(optimal_hits) /
                                        cases, 0) + " of cases");
  PaperVsMeasured("average extra cost from recommendation error", "7.3 %",
                  TablePrinter::Percent(extra_cost_sum / cases));
  return 0;
}
