// bench_http_server: drives the HTTP front end (src/net/) over loopback with
// concurrent keep-alive clients and reports end-to-end req/s — the cost of
// the socket + parse + route layers on top of the serving tier that
// bench_service_throughput measures in isolation.
//
//   bench_http_server [clients] [requests-per-client] [model-dir] [out-json]
//
// Defaults: 32 clients x 500 requests against a warm prediction cache (the
// paper's recurring-application scenario, where /v1/recommend answers on the
// event-loop fast path). Without a model-dir, the five paper workloads are
// trained into a temporary registry directory first (shared with
// bench_service_throughput, so the second bench run reuses the artifacts).
// Results are persisted to BENCH_http.json (same flat-JSON trajectory format
// as bench_cluster's BENCH_cluster.json) so CI can track them across commits.
// Acceptance: >= 5000 req/s warm-cache at 32 clients (skipped under
// sanitizers, which instrument every atomic on the path).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/table_printer.h"
#include "core/juggler.h"
#include "core/serialization.h"
#include "net/http_recommend_server.h"
#include "service/model_registry.h"
#include "service/recommendation_service.h"
#include "workloads/workloads.h"

using namespace juggler;  // NOLINT

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Trains any of the five workloads missing from `dir` (same recipe and
/// directory default as bench_service_throughput, so artifacts are shared).
void EnsureModels(const fs::path& dir) {
  fs::create_directories(dir);
  for (const auto& w : workloads::AllWorkloads()) {
    const fs::path path = dir / (w.name + service::ModelRegistry::kModelSuffix);
    if (fs::exists(path)) continue;
    core::JugglerConfig config;
    config.time_grid = core::TrainingGrid{
        {0.4 * w.paper_params.examples, 0.7 * w.paper_params.examples,
         w.paper_params.examples},
        {0.4 * w.paper_params.features, 0.7 * w.paper_params.features,
         w.paper_params.features},
        w.paper_params.iterations};
    config.memory_reference = w.paper_params;
    config.run_options.noise_sigma = 0.0;
    config.run_options.straggler_prob = 0.0;
    std::printf("  training %-4s -> %s\n", w.name.c_str(), path.c_str());
    auto training = core::TrainJuggler(w.name, w.make, config);
    if (!training.ok()) {
      std::fprintf(stderr, "training %s failed: %s\n", w.name.c_str(),
                   training.status().ToString().c_str());
      std::exit(1);
    }
    std::ofstream out(path);
    if (auto st = core::SaveTrainedJuggler(training->trained, out);
        !st.ok() || !out) {
      std::fprintf(stderr, "saving %s failed\n", path.c_str());
      std::exit(1);
    }
  }
}

/// One serialized POST /v1/recommend per distinct question: 8 input sizes for
/// each of the five apps. Clients cycle through these, so after one warm-up
/// pass every request is a cache hit answered on the event loop.
std::vector<std::string> BuildWireRequests() {
  std::vector<std::string> wire;
  for (const auto& w : workloads::AllWorkloads()) {
    for (int i = 0; i < 8; ++i) {
      char body[256];
      std::snprintf(body, sizeof(body),
                    "{\"app\":\"%s\",\"params\":{\"examples\":%d,"
                    "\"features\":%d,\"iterations\":5}}",
                    w.name.c_str(), 8000 + 2000 * i, 2000 + 500 * i);
      char request[512];
      std::snprintf(request, sizeof(request),
                    "POST /v1/recommend HTTP/1.1\r\n"
                    "Host: bench\r\n"
                    "Content-Type: application/json\r\n"
                    "Content-Length: %zu\r\n"
                    "\r\n"
                    "%s",
                    std::strlen(body), body);
      wire.emplace_back(request);
    }
  }
  return wire;
}

/// Blocking keep-alive client: one connection, synchronous request/response.
class BenchClient {
 public:
  explicit BenchClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (fd_ < 0 ||
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      std::fprintf(stderr, "connect failed: %s\n", std::strerror(errno));
      std::exit(1);
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, 1 /* TCP_NODELAY */, &one, sizeof(one));
  }

  ~BenchClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  /// Sends one request and reads one full response; returns the HTTP status
  /// code, or -1 on a transport failure.
  int RoundTrip(const std::string& request) {
    size_t sent = 0;
    while (sent < request.size()) {
      const ssize_t n = ::send(fd_, request.data() + sent,
                               request.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return -1;
      sent += static_cast<size_t>(n);
    }
    while (true) {
      const size_t header_end = buffer_.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        const size_t total = header_end + 4 + ContentLength();
        if (buffer_.size() >= total) {
          const int status = std::atoi(buffer_.c_str() + 9);
          buffer_.erase(0, total);
          return status;
        }
      }
      char chunk[8192];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return -1;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  size_t ContentLength() const {
    const char* pos = std::strstr(buffer_.c_str(), "Content-Length: ");
    return pos != nullptr
               ? static_cast<size_t>(std::atol(pos + std::strlen(
                                                         "Content-Length: ")))
               : 0;
  }

  int fd_ = -1;
  std::string buffer_;
};

}  // namespace

int main(int argc, char** argv) {
  const int clients = argc > 1 ? std::atoi(argv[1]) : 32;
  const int requests_per_client = argc > 2 ? std::atoi(argv[2]) : 500;
  const fs::path model_dir =
      argc > 3 ? fs::path(argv[3])
               : fs::temp_directory_path() / "juggler_bench_registry";
  const fs::path output_json =
      argc > 4 ? fs::path(argv[4]) : fs::path("BENCH_http.json");
  if (clients <= 0 || requests_per_client <= 0) {
    std::fprintf(
        stderr,
        "usage: %s [clients] [requests-per-client] [model-dir] [out-json]\n",
        argv[0]);
    return 2;
  }

  std::printf("== HTTP serving throughput ==\n");
  std::printf("registry: %s\n", model_dir.c_str());
  EnsureModels(model_dir);

  auto registry = std::make_shared<service::ModelRegistry>(model_dir.string());
  if (auto st = registry->Refresh(); !st.ok()) {
    std::fprintf(stderr, "registry refresh failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }

  service::RecommendationService::Options svc_options;
  svc_options.num_workers = 4;
  svc_options.queue_capacity = 4096;
  svc_options.cache.capacity = 1024;
  auto svc = std::make_shared<service::RecommendationService>(registry,
                                                              svc_options);

  net::HttpRecommendServer::Options options;
  options.http.port = 0;  // Ephemeral.
  options.http.num_handler_threads = 4;
  options.http.max_connections = static_cast<size_t>(clients) + 16;
  net::HttpRecommendServer server(registry, svc, options);
  if (auto st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("listening on 127.0.0.1:%u (%s), %zu models (registry v%llu)\n",
              server.port(), server.backend().c_str(), registry->size(),
              static_cast<unsigned long long>(registry->version()));

  const auto wire = BuildWireRequests();

  // Warm-up: one pass over every distinct question fills the prediction
  // cache, so the timed phase measures the recurring-application fast path.
  {
    BenchClient warmer(server.port());
    for (const auto& request : wire) {
      if (warmer.RoundTrip(request) != 200) {
        std::fprintf(stderr, "FAIL: warm-up request did not return 200\n");
        return 1;
      }
    }
  }

  std::printf("%d clients x %d requests, %zu distinct questions\n", clients,
              requests_per_client, wire.size());
  std::vector<std::thread> threads;
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> rejected{0};
  const auto start = Clock::now();
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      BenchClient client(server.port());
      for (int i = 0; i < requests_per_client; ++i) {
        const int status =
            client.RoundTrip(wire[static_cast<size_t>(t + i) % wire.size()]);
        if (status == 503) {
          rejected.fetch_add(1);  // Backpressure: a real client retries.
        } else if (status != 200) {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed_s = SecondsSince(start);
  const uint64_t total = static_cast<uint64_t>(clients) * requests_per_client;
  const double qps = total / elapsed_s;

  const auto http = server.http_stats();
  const auto stats = svc->GetStats();
  TablePrinter table({"Metric", "Value"});
  table.AddRow({"requests", std::to_string(total)});
  table.AddRow({"errors", std::to_string(errors.load())});
  table.AddRow({"rejected (503)", std::to_string(rejected.load())});
  table.AddRow({"wall time", TablePrinter::Num(elapsed_s) + " s"});
  table.AddRow({"req/s", TablePrinter::Num(qps)});
  table.AddRow({"fast-path answers",
                std::to_string(http.fast_path) + " / " +
                    std::to_string(http.requests)});
  table.AddRow({"connections accepted", std::to_string(http.accepted)});
  table.AddRow({"cache hit rate",
                TablePrinter::Num(100.0 * stats.cache.HitRate()) + " %"});
  table.AddRow({"latency p50",
                TablePrinter::Num(stats.latency.p50_us) + " us"});
  table.AddRow({"latency p95",
                TablePrinter::Num(stats.latency.p95_us) + " us"});
  table.Print(std::cout);

  // Persisted perf trajectory: one flat JSON document per run (the same
  // shape bench_cluster writes to BENCH_cluster.json).
  {
    std::ofstream out(output_json);
    char json[512];
    std::snprintf(json, sizeof(json),
                  "{\"bench\":\"http\",\"clients\":%d,\"requests\":%llu,"
                  "\"errors\":%llu,\"rejected\":%llu,\"req_per_s\":%.1f,"
                  "\"fast_path\":%llu,\"cache_hit_rate\":%.4f,"
                  "\"p50_us\":%.1f,\"p95_us\":%.1f}\n",
                  clients, static_cast<unsigned long long>(total),
                  static_cast<unsigned long long>(errors.load()),
                  static_cast<unsigned long long>(rejected.load()), qps,
                  static_cast<unsigned long long>(http.fast_path),
                  stats.cache.HitRate(), stats.latency.p50_us,
                  stats.latency.p95_us);
    out << json;
    if (!out) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", output_json.c_str());
      return 1;
    }
    std::printf("wrote %s\n", output_json.c_str());
  }

  server.Stop();

  if (errors.load() > 0) {
    std::fprintf(stderr, "FAIL: %llu non-200/503 responses\n",
                 static_cast<unsigned long long>(errors.load()));
    return 1;
  }
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  std::printf("(sanitizer build: req/s acceptance check skipped)\n");
#else
  if (clients >= 32 && qps < 5000.0) {
    std::fprintf(stderr, "FAIL: %.0f req/s < 5000 acceptance floor\n", qps);
    return 1;
  }
#endif
  std::printf("\nOK\n");
  return 0;
}
