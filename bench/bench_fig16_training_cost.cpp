// Figure 16 & Table 5 — Training cost of Juggler's stages, the per-run cost
// savings vs HiBench, and the number of actual runs needed to amortize the
// offline training (the paper: 57.8 % average savings, 4 runs to amortize
// the optimization stages, 43 for prediction).
//
// Also the offline entry of the perf-trajectory series: wall-clock fit time
// per workload is persisted to BENCH_fit.json (same flat-JSON shape as
// bench_cluster's BENCH_cluster.json) so CI tracks training cost across
// commits, with in-binary acceptance floors on the replicated savings.

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "bench/bench_common.h"

using namespace juggler;        // NOLINT
using namespace juggler::bench; // NOLINT

int main(int argc, char** argv) {
  const std::filesystem::path output_json =
      argc > 1 ? std::filesystem::path(argv[1])
               : std::filesystem::path("BENCH_fit.json");
  std::printf("=== Figure 16 / Table 5: training cost and general gains ===\n\n");

  TablePrinter fig16({"Application", "Hotspot", "Param calib.", "Memory calib.",
                      "Time models"});
  TablePrinter t5({"", "LIR", "LOR", "PCA", "RFC", "SVM"});
  std::vector<std::string> default_row = {"Default cost (machine min)"};
  std::vector<std::string> juggler_row = {"Juggler cost (machine min)"};
  std::vector<std::string> savings_row = {"Cost savings per run"};
  std::vector<std::string> opt_cost_row = {"Optimization training cost"};
  std::vector<std::string> opt_runs_row = {"#Runs to gain (optimization)"};
  std::vector<std::string> pred_cost_row = {"Prediction training cost"};
  std::vector<std::string> pred_runs_row = {"#Runs to gain (total)"};
  double savings_sum = 0.0;
  double fit_wall_s = 0.0;
  double fit_wall_max_s = 0.0;
  double simulated_cost_sum = 0.0;
  int workload_count = 0;

  for (const auto& w : workloads::AllWorkloads()) {
    const auto fit_start = std::chrono::steady_clock::now();
    const auto training = TrainOrDie(w);
    const double fit_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      fit_start)
            .count();
    fit_wall_s += fit_s;
    fit_wall_max_s = std::max(fit_wall_max_s, fit_s);
    simulated_cost_sum += training.costs.Total();
    ++workload_count;
    const auto& costs = training.costs;
    fig16.AddRow({w.name,
                  TablePrinter::Percent(costs.hotspot / costs.Total(), 1),
                  TablePrinter::Percent(costs.parameter_calibration /
                                        costs.Total(), 1),
                  TablePrinter::Percent(costs.memory_calibration /
                                        costs.Total(), 1),
                  TablePrinter::Percent(costs.time_models / costs.Total(), 1)});

    // Default: average cost of the HiBench schedule across all cluster
    // configurations (the end user has no sizing guidance).
    const auto default_sweep =
        SweepMachines(w, w.paper_params, w.make(w.paper_params).default_plan);
    double default_avg = 0.0;
    for (const auto& p : default_sweep) default_avg += p.cost_machine_min;
    default_avg /= default_sweep.size();

    // Juggler: average cost of its schedules at their recommended
    // configurations.
    auto recs = training.trained.RecommendAll(w.paper_params,
                                              minispark::PaperCluster(1));
    if (!recs.ok()) return 1;
    double juggler_avg = 0.0;
    for (const auto& rec : *recs) {
      minispark::Engine engine(ActualRunOptions(5));
      auto r = engine.Run(w.make(w.paper_params),
                          minispark::PaperCluster(rec.machines), rec.plan);
      if (!r.ok()) return 1;
      juggler_avg += r->CostMachineMinutes();
    }
    juggler_avg /= static_cast<double>(recs->size());

    const double savings_per_run = default_avg - juggler_avg;
    const double savings_pct = savings_per_run / default_avg;
    savings_sum += savings_pct;
    const auto runs_to_amortize = [&](double training_cost) {
      if (savings_per_run <= 0) return std::string("-");
      return std::to_string(
          static_cast<int>(std::ceil(training_cost / savings_per_run)));
    };

    default_row.push_back(TablePrinter::Num(default_avg));
    juggler_row.push_back(TablePrinter::Num(juggler_avg));
    savings_row.push_back(TablePrinter::Percent(savings_pct, 0));
    opt_cost_row.push_back(TablePrinter::Num(costs.Optimization()));
    opt_runs_row.push_back(runs_to_amortize(costs.Optimization()));
    pred_cost_row.push_back(TablePrinter::Num(costs.Total()));
    pred_runs_row.push_back(runs_to_amortize(costs.Total()));
  }

  std::printf("--- Figure 16: share of training cost per stage ---\n");
  fig16.Print(std::cout);

  std::printf("\n--- Table 5: training cost efficiency and general gains ---\n");
  t5.AddRow(default_row);
  t5.AddRow(juggler_row);
  t5.AddRow(savings_row);
  t5.AddRow(opt_cost_row);
  t5.AddRow(opt_runs_row);
  t5.AddRow(pred_cost_row);
  t5.AddRow(pred_runs_row);
  t5.Print(std::cout);

  std::printf("\n");
  PaperVsMeasured("average cost savings per run", "57.8 %",
                  TablePrinter::Percent(savings_sum / 5));
  PaperVsMeasured("paper's #runs to amortize (optimization, avg)", "4",
                  "see table");
  std::printf("\nNote: most of the training cost comes from building the\n"
              "execution time models, as in the paper (Figure 16).\n");

  const double savings_avg = savings_sum / workload_count;
  std::printf("\nfit wall clock: %.3f s total, %.3f s slowest workload\n",
              fit_wall_s, fit_wall_max_s);

  // Persisted perf trajectory: one flat JSON document per run (the same
  // shape bench_cluster writes to BENCH_cluster.json).
  {
    std::ofstream out(output_json);
    char json[384];
    std::snprintf(json, sizeof(json),
                  "{\"bench\":\"fit\",\"workloads\":%d,\"fit_wall_s\":%.3f,"
                  "\"fit_wall_max_s\":%.3f,\"fit_wall_avg_s\":%.3f,"
                  "\"simulated_cost_machine_min\":%.2f,"
                  "\"savings_avg\":%.4f}\n",
                  workload_count, fit_wall_s, fit_wall_max_s,
                  fit_wall_s / workload_count, simulated_cost_sum,
                  savings_avg);
    out << json;
    if (!out) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", output_json.c_str());
      return 1;
    }
    std::printf("wrote %s\n", output_json.c_str());
  }

  // Acceptance floors. These are simulator results (deterministic seeds),
  // so they hold under sanitizers too — only wall-clock would not.
  if (workload_count != 5) {
    std::fprintf(stderr, "FAIL: expected 5 workloads, trained %d\n",
                 workload_count);
    return 1;
  }
  if (savings_avg < 0.2) {
    std::fprintf(stderr,
                 "FAIL: average savings %.1f %% < 20 %% floor (paper: 57.8 "
                 "%%)\n",
                 100.0 * savings_avg);
    return 1;
  }
  std::printf("\nOK\n");
  return 0;
}
