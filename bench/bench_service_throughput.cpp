// bench_service_throughput: drives the online serving subsystem (§5.5 as a
// service) with concurrent clients and reports QPS, cache hit rate, and
// latency percentiles — the serving-tier numbers the paper's recurring-
// application scenario implies but never measures.
//
//   bench_service_throughput [clients] [requests-per-client] [model-dir]
//                            [out-json]
//
// Defaults: 8 clients x 1000 requests. Without a model-dir, the five paper
// workloads are trained into a temporary registry directory first (small
// training grids; the bench measures serving, not training). Also reports
// the warm-cache-hit vs. uncached-model-evaluation speedup (acceptance:
// >= 10x). Results are persisted to BENCH_service.json (the same flat-JSON
// trajectory format as bench_cluster's BENCH_cluster.json).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/table_printer.h"
#include "core/juggler.h"
#include "core/serialization.h"
#include "service/model_registry.h"
#include "service/recommendation_service.h"
#include "workloads/workloads.h"

using namespace juggler;  // NOLINT

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Trains any of the five workloads missing from `dir` (small grids — the
/// bench measures the serving tier, not the offline stages).
void EnsureModels(const fs::path& dir) {
  fs::create_directories(dir);
  for (const auto& w : workloads::AllWorkloads()) {
    const fs::path path = dir / (w.name + service::ModelRegistry::kModelSuffix);
    if (fs::exists(path)) continue;
    // The full paper training recipe (0.4x-1x of the Table 1 parameters) —
    // the bench serves the same artifacts a production registry would hold.
    core::JugglerConfig config;
    config.time_grid = core::TrainingGrid{
        {0.4 * w.paper_params.examples, 0.7 * w.paper_params.examples,
         w.paper_params.examples},
        {0.4 * w.paper_params.features, 0.7 * w.paper_params.features,
         w.paper_params.features},
        w.paper_params.iterations};
    config.memory_reference = w.paper_params;
    config.run_options.noise_sigma = 0.0;
    config.run_options.straggler_prob = 0.0;
    std::printf("  training %-4s -> %s\n", w.name.c_str(), path.c_str());
    auto training = core::TrainJuggler(w.name, w.make, config);
    if (!training.ok()) {
      std::fprintf(stderr, "training %s failed: %s\n", w.name.c_str(),
                   training.status().ToString().c_str());
      std::exit(1);
    }
    std::ofstream out(path);
    if (auto st = core::SaveTrainedJuggler(training->trained, out);
        !st.ok() || !out) {
      std::fprintf(stderr, "saving %s failed\n", path.c_str());
      std::exit(1);
    }
  }
}

/// The request mix: a fixed pool of distinct questions across all five apps.
/// Recurring applications re-ask the same questions, so clients sample from
/// this pool — that is what makes the prediction cache earn its keep.
std::vector<service::RecommendRequest> BuildRequestPool() {
  std::vector<service::RecommendRequest> pool;
  for (const auto& w : workloads::AllWorkloads()) {
    for (int i = 0; i < 8; ++i) {
      service::RecommendRequest req;
      req.app = w.name;
      req.params = minispark::AppParams{8000.0 + 2000.0 * i,
                                        2000.0 + 500.0 * i, 5};
      req.machine_type = minispark::PaperCluster(1);
      pool.push_back(std::move(req));
    }
  }
  return pool;
}

}  // namespace

int main(int argc, char** argv) {
  const int clients = argc > 1 ? std::atoi(argv[1]) : 8;
  const int requests_per_client = argc > 2 ? std::atoi(argv[2]) : 1000;
  const fs::path model_dir =
      argc > 3 ? fs::path(argv[3])
               : fs::temp_directory_path() / "juggler_bench_registry";
  const fs::path output_json =
      argc > 4 ? fs::path(argv[4]) : fs::path("BENCH_service.json");
  if (clients <= 0 || requests_per_client <= 0) {
    std::fprintf(
        stderr,
        "usage: %s [clients] [requests-per-client] [model-dir] [out-json]\n",
        argv[0]);
    return 2;
  }

  std::printf("== Online serving throughput ==\n");
  std::printf("registry: %s\n", model_dir.c_str());
  EnsureModels(model_dir);

  auto registry = std::make_shared<service::ModelRegistry>(model_dir.string());
  if (auto st = registry->Refresh(); !st.ok()) {
    std::fprintf(stderr, "registry refresh failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu models (registry v%llu)\n\n", registry->size(),
              static_cast<unsigned long long>(registry->version()));

  service::RecommendationService::Options options;
  options.num_workers = 8;
  options.queue_capacity = 4096;
  options.cache.capacity = 1024;
  service::RecommendationService svc(registry, options);

  const auto pool = BuildRequestPool();

  // --- Concurrent client phase -------------------------------------------
  std::printf("%d clients x %d requests, %zu distinct questions, %d workers\n",
              clients, requests_per_client, pool.size(), options.num_workers);
  std::vector<std::thread> threads;
  std::atomic<uint64_t> errors{0};
  const auto start = Clock::now();
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0xbadc0ffee + static_cast<uint64_t>(t));
      for (int i = 0; i < requests_per_client; ++i) {
        const auto& req = pool[rng.Next() % pool.size()];
        auto result = svc.Recommend(req);
        // Backpressure is a valid answer under overload; a client would
        // retry. Anything else is a bench failure.
        if (!result.ok() &&
            result.status().code() != StatusCode::kResourceExhausted) {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed_s = SecondsSince(start);
  const uint64_t total = static_cast<uint64_t>(clients) * requests_per_client;

  const auto stats = svc.GetStats();
  TablePrinter table({"Metric", "Value"});
  table.AddRow({"requests", std::to_string(total)});
  table.AddRow({"errors", std::to_string(errors.load())});
  table.AddRow({"rejected (backpressure)", std::to_string(stats.rejected)});
  table.AddRow({"wall time", TablePrinter::Num(elapsed_s) + " s"});
  table.AddRow({"QPS", TablePrinter::Num(total / elapsed_s)});
  table.AddRow({"cache hit rate",
                TablePrinter::Num(100.0 * stats.cache.HitRate()) + " %"});
  table.AddRow({"cache size / evictions",
                std::to_string(stats.cache.size) + " / " +
                    std::to_string(stats.cache.evictions)});
  table.AddRow({"model evaluations", std::to_string(stats.evaluations)});
  table.AddRow({"latency p50", TablePrinter::Num(stats.latency.p50_us) + " us"});
  table.AddRow({"latency p95", TablePrinter::Num(stats.latency.p95_us) + " us"});
  table.AddRow({"latency max", TablePrinter::Num(stats.latency.max_us) + " us"});
  table.AddRow(
      {"latency mean", TablePrinter::Num(stats.latency.MeanUs()) + " us"});
  table.Print(std::cout);

  if (errors.load() > 0) {
    std::fprintf(stderr, "FAIL: %llu unexpected errors\n",
                 static_cast<unsigned long long>(errors.load()));
    return 1;
  }

  // --- Warm-hit vs uncached evaluation ------------------------------------
  // Acceptance: a warm PredictionCache hit answers >= 10x faster than
  // evaluating TrainedJuggler::Recommend() from scratch. Probe with the
  // registry's most schedule-rich model (the heaviest online evaluation).
  size_t probe_index = 0;
  size_t most_schedules = 0;
  for (size_t i = 0; i < pool.size(); ++i) {
    auto m = registry->Lookup(pool[i].app);
    if (m.ok() && (*m)->schedules().size() > most_schedules) {
      most_schedules = (*m)->schedules().size();
      probe_index = i;
    }
  }
  const auto& probe = pool[probe_index];
  auto model = registry->Lookup(probe.app);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  std::printf("\nprobe app: %s (%zu schedules)\n", probe.app.c_str(),
              most_schedules);
  (void)svc.Recommend(probe);  // Warm the cache entry.

  constexpr int kProbeIters = 50000;
  const auto warm_start = Clock::now();
  for (int i = 0; i < kProbeIters; ++i) {
    auto r = svc.Recommend(probe);
    if (!r.ok() || !r->cache_hit) {
      std::fprintf(stderr, "FAIL: warm probe missed the cache\n");
      return 1;
    }
  }
  const double warm_us = 1e6 * SecondsSince(warm_start) / kProbeIters;

  // The uncached serving path (what a hit short-circuits): queue handoff,
  // worker wakeup, model evaluation, cache insertion. Unique parameters per
  // request guarantee a miss every time.
  constexpr int kMissIters = 5000;
  const auto miss_start = Clock::now();
  for (int i = 0; i < kMissIters; ++i) {
    auto req = probe;
    req.params.examples += i + 1;  // Never-seen key -> forced miss.
    auto r = svc.Recommend(req);
    if (!r.ok() || r->cache_hit) {
      std::fprintf(stderr, "FAIL: miss probe hit the cache\n");
      return 1;
    }
  }
  const double miss_us = 1e6 * SecondsSince(miss_start) / kMissIters;

  // The bare model evaluation, outside the service (no queue, no cache).
  const auto eval_start = Clock::now();
  for (int i = 0; i < kProbeIters; ++i) {
    auto r = (*model)->Recommend(probe.params, probe.machine_type);
    if (!r.ok()) {
      std::fprintf(stderr, "FAIL: direct Recommend failed\n");
      return 1;
    }
  }
  const double eval_us = 1e6 * SecondsSince(eval_start) / kProbeIters;

  const double speedup = miss_us / warm_us;
  std::printf("\nwarm cache hit:         %8.3f us/request\n", warm_us);
  std::printf("uncached serving path:  %8.3f us/request\n", miss_us);
  std::printf("bare model evaluation:  %8.3f us/request\n", eval_us);
  std::printf("hit vs uncached path:   %8.1fx (acceptance: >= 10x)\n",
              speedup);
  std::printf("hit vs bare evaluation: %8.1fx\n", eval_us / warm_us);

  // Persisted perf trajectory: one flat JSON document per run (the same
  // shape bench_cluster writes to BENCH_cluster.json).
  {
    std::ofstream out(output_json);
    char json[512];
    std::snprintf(json, sizeof(json),
                  "{\"bench\":\"service\",\"clients\":%d,\"requests\":%llu,"
                  "\"errors\":%llu,\"qps\":%.1f,\"cache_hit_rate\":%.4f,"
                  "\"p50_us\":%.1f,\"p95_us\":%.1f,\"warm_hit_us\":%.3f,"
                  "\"uncached_us\":%.3f,\"speedup\":%.1f}\n",
                  clients, static_cast<unsigned long long>(total),
                  static_cast<unsigned long long>(errors.load()),
                  total / elapsed_s, stats.cache.HitRate(),
                  stats.latency.p50_us, stats.latency.p95_us, warm_us,
                  miss_us, speedup);
    out << json;
    if (!out) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", output_json.c_str());
      return 1;
    }
    std::printf("wrote %s\n", output_json.c_str());
  }
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  // Sanitizer builds exist to catch races, not to measure time: instrumented
  // mutexes/atomics dominate both paths, so the ratio is meaningless.
  std::printf("(sanitizer build: speedup acceptance check skipped)\n");
#else
  if (speedup < 10.0) {
    std::fprintf(stderr, "FAIL: warm hit path is not >= 10x faster\n");
    return 1;
  }
#endif
  std::printf("\nOK\n");
  return 0;
}
