// Figure 12 — Execution-time prediction accuracy: Juggler vs Ernest, per
// schedule, measured on the optimal cluster configuration at the paper's
// parameters. The paper reports averages of 90.6 % (Juggler) and 53.2 %
// (Ernest).

#include <iostream>

#include "baselines/ernest.h"
#include "bench/bench_common.h"
#include "math/stats.h"

using namespace juggler;        // NOLINT
using namespace juggler::bench; // NOLINT

int main() {
  std::printf("=== Figure 12: Juggler vs Ernest prediction accuracy ===\n\n");

  TablePrinter table({"Application", "Schedule", "#Machines", "Actual (min)",
                      "Juggler pred. (min)", "Juggler acc.",
                      "Ernest pred. (min)", "Ernest acc."});
  double juggler_acc_sum = 0.0;
  double ernest_acc_sum = 0.0;
  int cases = 0;

  for (const auto& w : workloads::AllWorkloads()) {
    const auto training = TrainOrDie(w);
    auto recs = training.trained.RecommendAll(w.paper_params,
                                              minispark::PaperCluster(1));
    if (!recs.ok()) return 1;

    // Ernest trains once per application on small samples across machine
    // counts (its optimal experiment design), with the developer plan.
    auto ernest = baselines::TrainErnest(
        w.make, w.paper_params, minispark::PaperCluster(1),
        baselines::ErnestExperimentDesign(kMaxMachines), ActualRunOptions(11));
    if (!ernest.ok()) return 1;

    for (const auto& rec : *recs) {
      minispark::Engine engine(ActualRunOptions(77));
      auto actual = engine.Run(w.make(w.paper_params),
                               minispark::PaperCluster(rec.machines), rec.plan);
      if (!actual.ok()) return 1;

      const double jug_acc = math::PredictionAccuracy(rec.predicted_time_ms,
                                                      actual->duration_ms);
      const double ern_pred = ernest->Predict(1.0, rec.machines);
      const double ern_acc =
          math::PredictionAccuracy(ern_pred, actual->duration_ms);
      juggler_acc_sum += jug_acc;
      ernest_acc_sum += ern_acc;
      ++cases;

      table.AddRow({w.name, "#" + std::to_string(rec.schedule_id),
                    std::to_string(rec.machines),
                    TablePrinter::Num(ToMinutes(actual->duration_ms)),
                    TablePrinter::Num(ToMinutes(rec.predicted_time_ms)),
                    TablePrinter::Percent(jug_acc),
                    TablePrinter::Num(ToMinutes(ern_pred)),
                    TablePrinter::Percent(ern_acc)});
    }
  }
  table.Print(std::cout);

  std::printf("\n");
  PaperVsMeasured("Juggler average prediction accuracy", "90.6 %",
                  TablePrinter::Percent(juggler_acc_sum / cases));
  PaperVsMeasured("Ernest average prediction accuracy", "53.2 %",
                  TablePrinter::Percent(ernest_acc_sum / cases));
  return 0;
}
