// Figure 9 — Actual runs with Juggler and HiBench schedules: the cost of
// every schedule (and the developer default) across 1-12 machines, with
// Juggler's recommended configuration marked by '*'. Also reproduces the
// §7.2 headline: averaged over the applications, Juggler's schedules at
// optimal configuration reduce execution time to 25.1 % and cost to 58.1 %
// of the HiBench defaults.

#include <iostream>

#include "bench/bench_common.h"

using namespace juggler;        // NOLINT
using namespace juggler::bench; // NOLINT

int main() {
  std::printf("=== Figure 9: actual runs with Juggler and HiBench schedules ===\n");

  double time_ratio_sum = 0.0;
  double cost_ratio_sum = 0.0;
  int apps = 0;

  for (const auto& w : workloads::AllWorkloads()) {
    std::printf("\n--- (%s) ---\n", w.name.c_str());
    const auto training = TrainOrDie(w);
    auto recs = training.trained.RecommendAll(w.paper_params,
                                              minispark::PaperCluster(1));
    if (!recs.ok()) return 1;

    // Default schedule sweep.
    const auto default_sweep =
        SweepMachines(w, w.paper_params, w.make(w.paper_params).default_plan);

    std::vector<std::string> header = {"#Machines", "Default (mach-min)"};
    for (const auto& r : *recs) {
      header.push_back("Sched#" + std::to_string(r.schedule_id) +
                       " (mach-min)");
    }
    TablePrinter table(header);

    std::vector<std::vector<SweepPoint>> sweeps;
    for (const auto& r : *recs) {
      sweeps.push_back(SweepMachines(w, w.paper_params, r.plan));
    }
    for (int m = 1; m <= kMaxMachines; ++m) {
      std::vector<std::string> row = {
          std::to_string(m),
          TablePrinter::Num(default_sweep[static_cast<size_t>(m - 1)]
                                .cost_machine_min)};
      for (size_t s = 0; s < sweeps.size(); ++s) {
        std::string cell = TablePrinter::Num(
            sweeps[s][static_cast<size_t>(m - 1)].cost_machine_min);
        if ((*recs)[s].machines == m) cell += " *";
        row.push_back(cell);
      }
      table.AddRow(row);
    }
    table.Print(std::cout);

    // Best Juggler schedule at its optimal configuration vs best default.
    const auto& best_default = CheapestPoint(default_sweep);
    double best_cost = std::numeric_limits<double>::infinity();
    double best_time = std::numeric_limits<double>::infinity();
    for (const auto& sweep : sweeps) {
      const auto& p = CheapestPoint(sweep);
      if (p.cost_machine_min < best_cost) best_cost = p.cost_machine_min;
      for (const auto& q : sweep) best_time = std::min(best_time, q.time_ms);
    }
    double best_default_time = std::numeric_limits<double>::infinity();
    for (const auto& q : default_sweep) {
      best_default_time = std::min(best_default_time, q.time_ms);
    }
    std::printf("best default cost %.1f | best Juggler cost %.1f "
                "(%.1f %% of default); best time ratio %.1f %%\n",
                best_default.cost_machine_min, best_cost,
                100.0 * best_cost / best_default.cost_machine_min,
                100.0 * best_time / best_default_time);
    time_ratio_sum += best_time / best_default_time;
    cost_ratio_sum += best_cost / best_default.cost_machine_min;
    ++apps;
  }

  std::printf("\n");
  PaperVsMeasured("avg execution time vs HiBench", "25.1 %",
                  TablePrinter::Percent(time_ratio_sum / apps));
  PaperVsMeasured("avg execution cost vs HiBench", "58.1 %",
                  TablePrinter::Percent(cost_ratio_sum / apps));
  return 0;
}
