// Figure 15 & Table 4 — Recommended cluster configuration vs related
// components (MemTune, RelM, SystemML), each adapted per §7.5 to tune the
// machine count. The paper's Table 4 reports extra cost of 36 %/46 %/9 %
// and time of -9 %/-46 %/-18 % relative to Juggler.

#include <iostream>

#include "baselines/sizing_baselines.h"
#include "bench/bench_common.h"

using namespace juggler;        // NOLINT
using namespace juggler::bench; // NOLINT

int main() {
  std::printf("=== Figure 15 / Table 4: cluster sizing vs related components ===\n\n");

  TablePrinter table({"Application", "Schedule", "Juggler", "MemTune", "RelM",
                      "SystemML", "Optimal"});
  std::map<std::string, double> cost_ratio;
  std::map<std::string, double> time_ratio;
  int cases = 0;

  for (const auto& w : workloads::AllWorkloads()) {
    const auto training = TrainOrDie(w);
    auto recs = training.trained.RecommendAll(w.paper_params,
                                              minispark::PaperCluster(1));
    if (!recs.ok()) return 1;
    const auto app = w.make(w.paper_params);

    for (const auto& rec : *recs) {
      // Inputs the related components' memory cost models consume.
      baselines::SizingInputs in;
      in.schedule_bytes = rec.predicted_bytes;
      in.input_bytes = app.dataset(0).bytes;
      in.output_bytes = MiB(1);
      // Execution fraction observed in this application (from the memory
      // factor: exec share = 1 - factor).
      in.exec_fraction = 1.0 - training.trained.memory().memory_factor;
      in.machine_type = minispark::PaperCluster(1);

      const auto sweep = SweepMachines(w, w.paper_params, rec.plan);
      const auto& opt = CheapestPoint(sweep);
      auto at = [&](int machines) -> const SweepPoint& {
        return sweep[static_cast<size_t>(
            std::clamp(machines, 1, kMaxMachines) - 1)];
      };

      std::vector<std::string> row = {w.name,
                                      "#" + std::to_string(rec.schedule_id),
                                      std::to_string(rec.machines)};
      for (const auto& baseline : baselines::AllSizingBaselines()) {
        const int machines = baseline.recommend(in);
        row.push_back(std::to_string(machines));
        cost_ratio[baseline.name] +=
            at(machines).cost_machine_min / at(rec.machines).cost_machine_min -
            1.0;
        time_ratio[baseline.name] +=
            at(machines).time_ms / at(rec.machines).time_ms - 1.0;
      }
      row.push_back(std::to_string(opt.machines));
      table.AddRow(row);
      ++cases;
    }
  }
  table.Print(std::cout);

  std::printf("\n--- Table 4: cost and time ratio vs Juggler ---\n");
  TablePrinter t4({"", "MemTune", "RelM", "SystemML"});
  std::vector<std::string> cost_row = {"Cost"};
  std::vector<std::string> time_row = {"Time"};
  for (const char* name : {"MemTune", "RelM", "SystemML"}) {
    cost_row.push_back(TablePrinter::Percent(cost_ratio[name] / cases, 0));
    time_row.push_back(TablePrinter::Percent(time_ratio[name] / cases, 0));
  }
  t4.AddRow(cost_row);
  t4.AddRow(time_row);
  t4.Print(std::cout);

  PaperVsMeasured("Table 4 cost (MemTune, RelM, SystemML)", "36 %, 46 %, 9 %",
                  "see table above");
  PaperVsMeasured("Table 4 time", "-9 %, -46 %, -18 %", "see table above");
  return 0;
}
