// Engine throughput — how many simulated tasks per wall-clock second the
// minispark engine executes. Everything upstream (training grids, sweeps,
// the serving tier's evaluations) is bounded by this number, so it gets its
// own perf-trajectory entry: results are persisted to BENCH_sim.json (the
// same flat-JSON shape as bench_cluster's BENCH_cluster.json), with an
// in-binary acceptance floor.
//
//   bench_sim_throughput [rounds] [out-json]
//
// Each round runs every workload's default plan at its paper parameters,
// instrumented, so the per-run task counts come from the profile the engine
// actually collected rather than a side calculation.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "bench/bench_common.h"

using namespace juggler;        // NOLINT
using namespace juggler::bench; // NOLINT

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 5;
  const std::filesystem::path output_json =
      argc > 2 ? std::filesystem::path(argv[2])
               : std::filesystem::path("BENCH_sim.json");
  if (rounds <= 0) {
    std::fprintf(stderr, "usage: %s [rounds] [out-json]\n", argv[0]);
    return 2;
  }

  std::printf("== Simulation engine throughput ==\n");
  const auto all = workloads::AllWorkloads();

  minispark::RunOptions options = ActualRunOptions();
  options.instrument = true;

  // Warmup: one untimed pass (first-touch allocations, page faults).
  for (const auto& w : all) {
    minispark::Engine engine(options);
    auto r = engine.Run(w.make(w.paper_params), minispark::PaperCluster(4),
                        w.make(w.paper_params).default_plan);
    if (!r.ok()) {
      std::fprintf(stderr, "FAIL: warmup run failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
  }

  int64_t total_tasks = 0;
  int64_t total_runs = 0;
  double simulated_ms = 0.0;
  const auto start = std::chrono::steady_clock::now();
  for (int round = 0; round < rounds; ++round) {
    for (const auto& w : all) {
      options.seed = 42 + static_cast<uint64_t>(round);
      minispark::Engine engine(options);
      auto r = engine.Run(w.make(w.paper_params), minispark::PaperCluster(4),
                          w.make(w.paper_params).default_plan);
      if (!r.ok() || r->profile == nullptr) {
        std::fprintf(stderr, "FAIL: instrumented run of %s failed\n",
                     w.name.c_str());
        return 1;
      }
      total_tasks += static_cast<int64_t>(r->profile->tasks().size());
      simulated_ms += r->duration_ms;
      ++total_runs;
    }
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const double tasks_per_s = static_cast<double>(total_tasks) / elapsed_s;
  const double runs_per_s = static_cast<double>(total_runs) / elapsed_s;
  // How much faster than real time the simulation runs: simulated
  // machine-time executed per wall second.
  const double time_compression = simulated_ms / 1000.0 / elapsed_s;

  std::printf("%lld runs, %lld simulated tasks in %.3f s\n",
              static_cast<long long>(total_runs),
              static_cast<long long>(total_tasks), elapsed_s);
  std::printf("simulated tasks/s:  %10.0f\n", tasks_per_s);
  std::printf("runs/s:             %10.1f\n", runs_per_s);
  std::printf("time compression:   %10.0fx real time\n", time_compression);

  // Persisted perf trajectory: one flat JSON document per run (the same
  // shape bench_cluster writes to BENCH_cluster.json).
  {
    std::ofstream out(output_json);
    char json[320];
    std::snprintf(json, sizeof(json),
                  "{\"bench\":\"sim\",\"rounds\":%d,\"runs\":%lld,"
                  "\"tasks\":%lld,\"wall_s\":%.3f,\"tasks_per_s\":%.0f,"
                  "\"runs_per_s\":%.1f,\"time_compression\":%.0f}\n",
                  rounds, static_cast<long long>(total_runs),
                  static_cast<long long>(total_tasks), elapsed_s, tasks_per_s,
                  runs_per_s, time_compression);
    out << json;
    if (!out) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", output_json.c_str());
      return 1;
    }
    std::printf("wrote %s\n", output_json.c_str());
  }

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  // Sanitizer builds exist to catch bugs, not to measure time.
  std::printf("(sanitizer build: tasks/s acceptance check skipped)\n");
#else
  if (tasks_per_s < 10000.0) {
    std::fprintf(stderr, "FAIL: %.0f tasks/s < 10000 acceptance floor\n",
                 tasks_per_s);
    return 1;
  }
#endif
  std::printf("\nOK\n");
  return 0;
}
