// bench_cluster: drives the horizontal serving tier end to end — concurrent
// keep-alive HTTP clients against a RouterHttpServer that consistent-hashes
// every question across two in-process JRPC shards — and reports cold and
// warm req/s plus client-observed p50/p99 latency. Results are persisted to
// BENCH_cluster.json so CI tracks the perf trajectory across commits.
//
//   bench_cluster [clients] [requests-per-client] [model-dir] [output-json]
//
// Defaults: 16 clients x 250 requests, models in the shared bench registry
// directory (trained on first run, reused after), JSON to
// ./BENCH_cluster.json. The cold pass times one client visiting every
// distinct question once (each answer is a shard-side model evaluation);
// the warm pass times all clients cycling over the now-cached questions.
// Acceptance: >= 2000 req/s warm at >= 16 clients (skipped under
// sanitizers) and zero failed requests in either pass.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/router.h"
#include "cluster/shard_server.h"
#include "common/table_printer.h"
#include "core/juggler.h"
#include "core/serialization.h"
#include "service/model_registry.h"
#include "service/recommendation_service.h"
#include "workloads/workloads.h"

using namespace juggler;  // NOLINT

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Trains any of the five workloads missing from `dir` (same recipe and
/// default directory as bench_http_server, so artifacts are shared).
void EnsureModels(const fs::path& dir) {
  fs::create_directories(dir);
  for (const auto& w : workloads::AllWorkloads()) {
    const fs::path path = dir / (w.name + service::ModelRegistry::kModelSuffix);
    if (fs::exists(path)) continue;
    core::JugglerConfig config;
    config.time_grid = core::TrainingGrid{
        {0.4 * w.paper_params.examples, 0.7 * w.paper_params.examples,
         w.paper_params.examples},
        {0.4 * w.paper_params.features, 0.7 * w.paper_params.features,
         w.paper_params.features},
        w.paper_params.iterations};
    config.memory_reference = w.paper_params;
    config.run_options.noise_sigma = 0.0;
    config.run_options.straggler_prob = 0.0;
    std::printf("  training %-4s -> %s\n", w.name.c_str(), path.c_str());
    auto training = core::TrainJuggler(w.name, w.make, config);
    if (!training.ok()) {
      std::fprintf(stderr, "training %s failed: %s\n", w.name.c_str(),
                   training.status().ToString().c_str());
      std::exit(1);
    }
    std::ofstream out(path);
    if (auto st = core::SaveTrainedJuggler(training->trained, out);
        !st.ok() || !out) {
      std::fprintf(stderr, "saving %s failed\n", path.c_str());
      std::exit(1);
    }
  }
}

/// One serialized POST /v1/recommend per distinct question: 8 input sizes
/// for each of the five apps, spread across both shards by the hash ring.
std::vector<std::string> BuildWireRequests() {
  std::vector<std::string> wire;
  for (const auto& w : workloads::AllWorkloads()) {
    for (int i = 0; i < 8; ++i) {
      char body[256];
      std::snprintf(body, sizeof(body),
                    "{\"app\":\"%s\",\"params\":{\"examples\":%d,"
                    "\"features\":%d,\"iterations\":5}}",
                    w.name.c_str(), 8000 + 2000 * i, 2000 + 500 * i);
      char request[512];
      std::snprintf(request, sizeof(request),
                    "POST /v1/recommend HTTP/1.1\r\n"
                    "Host: bench\r\n"
                    "Content-Type: application/json\r\n"
                    "Content-Length: %zu\r\n"
                    "\r\n"
                    "%s",
                    std::strlen(body), body);
      wire.emplace_back(request);
    }
  }
  return wire;
}

/// Blocking keep-alive client: one connection, synchronous request/response.
class BenchClient {
 public:
  explicit BenchClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (fd_ < 0 ||
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      std::fprintf(stderr, "connect failed: %s\n", std::strerror(errno));
      std::exit(1);
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, 1 /* TCP_NODELAY */, &one, sizeof(one));
  }

  ~BenchClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  /// Sends one request and reads one full response; returns the HTTP status
  /// code, or -1 on a transport failure.
  int RoundTrip(const std::string& request) {
    size_t sent = 0;
    while (sent < request.size()) {
      const ssize_t n = ::send(fd_, request.data() + sent,
                               request.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return -1;
      sent += static_cast<size_t>(n);
    }
    while (true) {
      const size_t header_end = buffer_.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        const size_t total = header_end + 4 + ContentLength();
        if (buffer_.size() >= total) {
          const int status = std::atoi(buffer_.c_str() + 9);
          buffer_.erase(0, total);
          return status;
        }
      }
      char chunk[8192];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return -1;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  size_t ContentLength() const {
    const char* pos = std::strstr(buffer_.c_str(), "Content-Length: ");
    return pos != nullptr
               ? static_cast<size_t>(std::atol(pos + std::strlen(
                                                         "Content-Length: ")))
               : 0;
  }

  int fd_ = -1;
  std::string buffer_;
};

/// One backend shard: lazy registry + service + JRPC server.
struct Shard {
  std::shared_ptr<service::ModelRegistry> registry;
  std::shared_ptr<service::RecommendationService> service;
  std::unique_ptr<cluster::ShardServer> server;
};

std::unique_ptr<Shard> StartShard(const fs::path& model_dir) {
  auto shard = std::make_unique<Shard>();
  service::ModelRegistry::Options ropts;
  ropts.lazy_load = true;  // Each shard only loads what routes to it.
  shard->registry =
      std::make_shared<service::ModelRegistry>(model_dir.string(), ropts);
  if (auto st = shard->registry->Refresh(); !st.ok()) {
    std::fprintf(stderr, "shard registry refresh failed: %s\n",
                 st.ToString().c_str());
    std::exit(1);
  }
  service::RecommendationService::Options svc_options;
  svc_options.num_workers = 2;
  svc_options.queue_capacity = 4096;
  svc_options.cache.capacity = 1024;
  shard->service = std::make_shared<service::RecommendationService>(
      shard->registry, svc_options);
  cluster::ShardServer::Options sopts;
  sopts.rpc.port = 0;  // Ephemeral.
  sopts.rpc.num_handler_threads = 4;
  shard->server = std::make_unique<cluster::ShardServer>(
      shard->registry, shard->service, sopts);
  if (auto st = shard->server->Start(); !st.ok()) {
    std::fprintf(stderr, "shard start failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  return shard;
}

double Percentile(std::vector<double>* sorted_us, double q) {
  if (sorted_us->empty()) return 0.0;
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(sorted_us->size() - 1) + 0.5);
  return (*sorted_us)[std::min(index, sorted_us->size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  const int clients = argc > 1 ? std::atoi(argv[1]) : 16;
  const int requests_per_client = argc > 2 ? std::atoi(argv[2]) : 250;
  const fs::path model_dir =
      argc > 3 ? fs::path(argv[3])
               : fs::temp_directory_path() / "juggler_bench_registry";
  const fs::path output_json =
      argc > 4 ? fs::path(argv[4]) : fs::path("BENCH_cluster.json");
  if (clients <= 0 || requests_per_client <= 0) {
    std::fprintf(
        stderr,
        "usage: %s [clients] [requests-per-client] [model-dir] [out-json]\n",
        argv[0]);
    return 2;
  }

  std::printf("== Cluster serving throughput (router + 2 shards) ==\n");
  std::printf("registry: %s\n", model_dir.c_str());
  EnsureModels(model_dir);

  std::vector<std::unique_ptr<Shard>> shards;
  std::vector<std::string> addresses;
  for (int i = 0; i < 2; ++i) {
    shards.push_back(StartShard(model_dir));
    addresses.push_back("127.0.0.1:" +
                        std::to_string(shards.back()->server->port()));
  }

  cluster::Router::Options ropts;
  ropts.shards = addresses;
  auto created = cluster::Router::Create(ropts);
  if (!created.ok()) {
    std::fprintf(stderr, "router create failed: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<cluster::Router> router = std::move(created).value();
  if (auto st = router->Start(); !st.ok()) {
    std::fprintf(stderr, "router start failed: %s\n", st.ToString().c_str());
    return 1;
  }

  cluster::RouterHttpServer::Options hopts;
  hopts.http.port = 0;
  hopts.http.num_handler_threads = 8;
  hopts.http.max_connections = static_cast<size_t>(clients) + 16;
  cluster::RouterHttpServer http(router.get(), hopts);
  if (auto st = http.Start(); !st.ok()) {
    std::fprintf(stderr, "router http start failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  std::printf("router on 127.0.0.1:%u (%s), shards: %s, %s\n", http.port(),
              http.backend().c_str(), addresses[0].c_str(),
              addresses[1].c_str());

  const auto wire = BuildWireRequests();

  // Cold pass: every distinct question once. Each answer crosses the RPC
  // hop and runs a model evaluation (plus a lazy model load the first time
  // an app hits its shard).
  double cold_req_per_s = 0.0;
  {
    BenchClient client(http.port());
    const auto start = Clock::now();
    for (const auto& request : wire) {
      if (client.RoundTrip(request) != 200) {
        std::fprintf(stderr, "FAIL: cold request did not return 200\n");
        return 1;
      }
    }
    cold_req_per_s = static_cast<double>(wire.size()) / SecondsSince(start);
  }

  // Warm pass: all clients cycle over cached questions concurrently.
  std::printf("%d clients x %d requests, %zu distinct questions\n", clients,
              requests_per_client, wire.size());
  std::vector<std::thread> threads;
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(clients));
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> rejected{0};
  const auto start = Clock::now();
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      BenchClient client(http.port());
      auto& mine = latencies[static_cast<size_t>(t)];
      mine.reserve(static_cast<size_t>(requests_per_client));
      for (int i = 0; i < requests_per_client; ++i) {
        const auto begin = Clock::now();
        const int status =
            client.RoundTrip(wire[static_cast<size_t>(t + i) % wire.size()]);
        mine.push_back(SecondsSince(begin) * 1e6);
        if (status == 503) {
          rejected.fetch_add(1);  // Backpressure: a real client retries.
        } else if (status != 200) {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed_s = SecondsSince(start);
  const uint64_t total = static_cast<uint64_t>(clients) * requests_per_client;
  const double warm_req_per_s = total / elapsed_s;

  std::vector<double> all_us;
  all_us.reserve(total);
  for (auto& v : latencies) {
    all_us.insert(all_us.end(), v.begin(), v.end());
  }
  std::sort(all_us.begin(), all_us.end());
  const double p50_us = Percentile(&all_us, 0.50);
  const double p99_us = Percentile(&all_us, 0.99);

  size_t loaded = 0;
  for (const auto& shard : shards) {
    loaded += shard->registry->loaded_models();
  }

  TablePrinter table({"Metric", "Value"});
  table.AddRow({"requests", std::to_string(total)});
  table.AddRow({"errors", std::to_string(errors.load())});
  table.AddRow({"rejected (503)", std::to_string(rejected.load())});
  table.AddRow({"cold req/s", TablePrinter::Num(cold_req_per_s)});
  table.AddRow({"warm req/s", TablePrinter::Num(warm_req_per_s)});
  table.AddRow({"latency p50", TablePrinter::Num(p50_us) + " us"});
  table.AddRow({"latency p99", TablePrinter::Num(p99_us) + " us"});
  table.AddRow({"reroutes", std::to_string(router->reroutes())});
  table.AddRow({"models resident (both shards)", std::to_string(loaded)});
  table.Print(std::cout);

  // Persisted perf trajectory: one flat JSON document per run.
  {
    std::ofstream out(output_json);
    char json[512];
    std::snprintf(json, sizeof(json),
                  "{\"bench\":\"cluster\",\"shards\":2,\"clients\":%d,"
                  "\"requests\":%llu,\"errors\":%llu,"
                  "\"cold_req_per_s\":%.1f,\"warm_req_per_s\":%.1f,"
                  "\"p50_us\":%.1f,\"p99_us\":%.1f,\"reroutes\":%llu}\n",
                  clients, static_cast<unsigned long long>(total),
                  static_cast<unsigned long long>(errors.load()),
                  cold_req_per_s, warm_req_per_s, p50_us, p99_us,
                  static_cast<unsigned long long>(router->reroutes()));
    out << json;
    if (!out) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", output_json.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", output_json.c_str());
  }

  http.Stop();
  router->Stop();
  for (auto& shard : shards) shard->server->Stop();

  if (errors.load() > 0) {
    std::fprintf(stderr, "FAIL: %llu non-200/503 responses\n",
                 static_cast<unsigned long long>(errors.load()));
    return 1;
  }
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  std::printf("(sanitizer build: req/s acceptance check skipped)\n");
#else
  if (clients >= 16 && warm_req_per_s < 2000.0) {
    std::fprintf(stderr, "FAIL: %.0f req/s < 2000 acceptance floor\n",
                 warm_req_per_s);
    return 1;
  }
#endif
  std::printf("\nOK\n");
  return 0;
}
