// Figures 10 & 11 and Table 3 — Dataset selection: Juggler vs the related
// cost models ([44] Nagel, [28] Jindal, [23] Hagedorn, LRC, MRD), each
// adapted into a schedule generator per §7.2. Every schedule is run on all
// cluster configurations and scored at its own minimal cost (Figure 10's
// bars); per-application per-approach averages give Figure 11; the average
// extra cost/time of each component vs Juggler gives Table 3. Averaging is
// what penalizes approaches that emit inefficient extra schedules — the
// paper's point that "Juggler is able to compare and omit inefficient
// schedules".

#include <iostream>

#include "baselines/cache_baselines.h"
#include "bench/bench_common.h"
#include "core/dataset_metrics.h"
#include "core/hotspot.h"

using namespace juggler;        // NOLINT
using namespace juggler::bench; // NOLINT

namespace {

struct ApproachResult {
  std::string plans;
  int schedules = 0;
  double avg_cost = 0.0;     ///< Mean over schedules of min-cost-over-configs.
  double avg_time_ms = 0.0;  ///< Time at each schedule's min-cost config.
};

ApproachResult Evaluate(const workloads::Workload& w,
                        const std::vector<core::Schedule>& schedules) {
  ApproachResult out;
  for (const auto& s : schedules) {
    const auto sweep = SweepMachines(w, w.paper_params, s.plan);
    const auto& p = CheapestPoint(sweep);
    out.avg_cost += p.cost_machine_min;
    out.avg_time_ms += p.time_ms;
    out.plans += (out.plans.empty() ? "" : " ; ") + s.plan.ToString();
    ++out.schedules;
  }
  if (out.schedules > 0) {
    out.avg_cost /= out.schedules;
    out.avg_time_ms /= out.schedules;
  }
  return out;
}

}  // namespace

int main() {
  std::printf("=== Figures 10-11 / Table 3: dataset selection vs related components ===\n");

  const auto policies = baselines::AllCachePolicies();
  std::map<std::string, double> cost_ratio_sum;
  std::map<std::string, double> time_ratio_sum;

  for (const auto& w : workloads::AllWorkloads()) {
    std::printf("\n--- (%s) ---\n", w.name.c_str());

    minispark::RunOptions o = ActualRunOptions();
    o.instrument = true;
    minispark::Engine engine(o);
    auto run = engine.RunDefault(w.make(minispark::AppParams{2000, 500, 3}),
                                 minispark::TrainingNode());
    if (!run.ok()) return 1;
    auto metrics = core::DeriveDatasetMetrics(*run->profile);
    if (!metrics.ok()) return 1;
    const core::MergedDag dag = core::BuildMergedDag(*run->profile);

    auto juggler_schedules = core::DetectHotspots(dag, *metrics);
    if (!juggler_schedules.ok()) return 1;

    TablePrinter table({"Approach", "#Schedules", "Schedules",
                        "Avg best cost (mach-min)", "Avg time (min)"});
    const ApproachResult juggler = Evaluate(w, *juggler_schedules);
    table.AddRow({"Juggler", std::to_string(juggler.schedules), juggler.plans,
                  TablePrinter::Num(juggler.avg_cost),
                  TablePrinter::Num(ToMinutes(juggler.avg_time_ms))});

    for (const auto policy : policies) {
      auto schedules =
          baselines::SelectSchedulesWithPolicy(policy, dag, *metrics, 4);
      if (!schedules.ok()) return 1;
      const ApproachResult result = Evaluate(w, *schedules);
      const std::string name = baselines::CachePolicyName(policy);
      table.AddRow({name, std::to_string(result.schedules), result.plans,
                    TablePrinter::Num(result.avg_cost),
                    TablePrinter::Num(ToMinutes(result.avg_time_ms))});
      cost_ratio_sum[name] += result.avg_cost / juggler.avg_cost - 1.0;
      time_ratio_sum[name] += result.avg_time_ms / juggler.avg_time_ms - 1.0;
    }
    table.Print(std::cout);
  }

  // Table 3: average extra cost and time of each component vs Juggler.
  std::printf("\n--- Table 3: extra cost and time vs Juggler ---\n");
  TablePrinter t3({"", "[44]", "[28]", "[23]", "LRC", "MRD"});
  const int napps = static_cast<int>(workloads::AllWorkloads().size());
  std::vector<std::string> cost_row = {"Cost"};
  std::vector<std::string> time_row = {"Time"};
  for (const char* name : {"[44]", "[28]", "[23]", "LRC", "MRD"}) {
    cost_row.push_back(TablePrinter::Percent(cost_ratio_sum[name] / napps, 0));
    time_row.push_back(TablePrinter::Percent(time_ratio_sum[name] / napps, 0));
  }
  t3.AddRow(cost_row);
  t3.AddRow(time_row);
  t3.Print(std::cout);
  PaperVsMeasured("Table 3 extra cost ([44],[28],[23],LRC,MRD)",
                  "29 %, 32 %, 17 %, 32 %, 33 %", "see table above");
  PaperVsMeasured("Table 3 extra time", "22 %, 30 %, 10 %, 37 %, 49 %",
                  "see table above");
  std::printf("\nFigure 11 (per-application average costs) is the 'Avg best "
              "cost' column of the per-app tables above.\n");
  return 0;
}
