// Figure 13 — Dataset size prediction accuracy: the sizes Juggler's
// parameter-calibration models predict for each schedule's cached datasets
// vs their actual sizes at the paper's parameters. The paper's worst-case
// error is 0.91 %.

#include <iostream>

#include "bench/bench_common.h"
#include "math/stats.h"

using namespace juggler;        // NOLINT
using namespace juggler::bench; // NOLINT

int main() {
  std::printf("=== Figure 13: Juggler's dataset size prediction accuracy ===\n\n");

  TablePrinter table({"Application", "Schedule", "Dataset", "Actual",
                      "Predicted", "Error"});
  double worst_error = 0.0;

  for (const auto& w : workloads::AllWorkloads()) {
    const auto training = TrainOrDie(w);
    const auto app = w.make(w.paper_params);
    for (const auto& schedule : training.trained.schedules()) {
      for (minispark::DatasetId d : schedule.datasets) {
        const auto& model = training.trained.sizes().models.at(d);
        const double predicted = model.Predict(w.paper_params.AsVector());
        const double actual = app.dataset(d).bytes;
        const double err = math::RelativeError(predicted, actual);
        worst_error = std::max(worst_error, err);
        table.AddRow({w.name, "#" + std::to_string(schedule.id),
                      app.dataset(d).name, FormatBytes(actual),
                      FormatBytes(predicted), TablePrinter::Percent(err, 2)});
      }
    }
  }
  table.Print(std::cout);

  std::printf("\n");
  PaperVsMeasured("worst-case size prediction error", "0.91 %",
                  TablePrinter::Percent(worst_error, 2));
  return 0;
}
