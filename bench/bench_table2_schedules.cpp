// Table 2 — Juggler's SCHEDULES and the HiBench default schedules, in the
// paper's p(i)/u(i) notation. Dataset ids are this implementation's; the
// mapping to the paper's ids is noted per application.

#include <iostream>

#include "bench/bench_common.h"
#include "core/dataset_metrics.h"
#include "core/hotspot.h"

using namespace juggler;        // NOLINT
using namespace juggler::bench; // NOLINT

int main() {
  std::printf("=== Table 2: Juggler's SCHEDULES & default schedules ===\n\n");

  TablePrinter table({"Application", "ID", "Schedule", "Cached datasets"});
  const std::map<std::string, std::string> paper = {
      {"lir", "1: p(1) | 2: p(1) p(3) | HiBench: -"},
      {"lor", "1: p(2) | 3: p(1) p(2) u(2) p(11) | HiBench: p(2) p(11)"},
      {"pca", "3: p(1) u(1) p(2) u(2) p(13) | HiBench: p(2)"},
      {"rfc", "1: p(11) | 2: p(1) p(12) | 3: p(1) p(5) u(5) p(12) | HiBench: p(12)"},
      {"svm", "1: p(2) | 2: p(1) p(6) | HiBench: p(2)"}};

  for (const auto& w : workloads::AllWorkloads()) {
    minispark::RunOptions o = ActualRunOptions();
    o.instrument = true;
    minispark::Engine engine(o);
    const auto sample = w.make(minispark::AppParams{2000, 500, 3});
    auto run = engine.RunDefault(sample, minispark::TrainingNode());
    if (!run.ok()) return 1;
    auto metrics = core::DeriveDatasetMetrics(*run->profile);
    if (!metrics.ok()) return 1;
    auto schedules =
        core::DetectHotspots(core::BuildMergedDag(*run->profile), *metrics);
    if (!schedules.ok()) return 1;

    std::string measured;
    for (const auto& s : *schedules) {
      std::string names;
      for (auto d : s.datasets) {
        names += (names.empty() ? "" : ", ") + sample.dataset(d).name;
      }
      table.AddRow({w.name, std::to_string(s.id), s.plan.ToString(), names});
      measured += std::to_string(s.id) + ": " + s.plan.ToString() + " | ";
    }
    std::string default_names;
    for (auto d : sample.default_plan.PersistedDatasets()) {
      default_names +=
          (default_names.empty() ? "" : ", ") + sample.dataset(d).name;
    }
    table.AddRow({w.name, "HiBench", sample.default_plan.ToString(),
                  default_names});
    measured += "HiBench: " + sample.default_plan.ToString();
    PaperVsMeasured(w.name, paper.at(w.name), measured);
  }
  std::printf("\n");
  table.Print(std::cout);
  std::printf(
      "\nNote: dataset ids are implementation-local; the paper's p(2)/p(11)\n"
      "etc. map onto this implementation's labeled-points / std-instances /\n"
      "bagged-points datasets as shown in the 'Cached datasets' column.\n");
  return 0;
}
