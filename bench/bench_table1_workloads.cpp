// Table 1 — Details of evaluated applications: parameters, input size,
// dataset counts, intermediate datasets, and number of schedules Juggler
// detects.

#include <iostream>

#include "bench/bench_common.h"
#include "core/dataset_metrics.h"
#include "core/hotspot.h"

using namespace juggler;        // NOLINT
using namespace juggler::bench; // NOLINT

int main() {
  std::printf("=== Table 1: Details of evaluated applications ===\n\n");

  TablePrinter table({"Application", "Examples", "Features", "Iterations",
                      "Input data", "Datasets", "Intermediate datasets",
                      "Schedules"});
  struct PaperRow {
    const char* input;
    int datasets;
    int intermediates;
    int schedules;
  };
  const std::map<std::string, PaperRow> paper = {
      {"lir", {"35.8 GB", 111, 16, 2}}, {"lor", {"26.1 GB", 210, 4, 2}},
      {"pca", {"229.2 MB", 1833, 5, 1}}, {"rfc", {"29.8 GB", 26, 8, 3}},
      {"svm", {"23.8 GB", 524, 9, 2}}};

  for (const auto& w : workloads::AllWorkloads()) {
    const auto app = w.make(w.paper_params);
    const auto counts = minispark::ComputationCounts(app);
    int intermediates = 0;
    for (long long n : counts) {
      if (n > 1) ++intermediates;
    }

    // Schedule count from hotspot detection on the sample run.
    minispark::RunOptions o = ActualRunOptions();
    o.instrument = true;
    minispark::Engine engine(o);
    auto run = engine.RunDefault(w.make(minispark::AppParams{2000, 500, 3}),
                                 minispark::TrainingNode());
    if (!run.ok()) return 1;
    auto metrics = core::DeriveDatasetMetrics(*run->profile);
    if (!metrics.ok()) return 1;
    auto schedules =
        core::DetectHotspots(core::BuildMergedDag(*run->profile), *metrics);
    if (!schedules.ok()) return 1;

    table.AddRow({w.name, TablePrinter::Num(w.paper_params.examples, 0),
                  TablePrinter::Num(w.paper_params.features, 0),
                  std::to_string(w.paper_params.iterations),
                  FormatBytes(app.dataset(0).bytes),
                  std::to_string(app.num_datasets()),
                  std::to_string(intermediates),
                  std::to_string(schedules->size())});

    const PaperRow& p = paper.at(w.name);
    PaperVsMeasured(
        w.name + " (input | datasets | intermediates | schedules)",
        std::string(p.input) + " | " + std::to_string(p.datasets) + " | " +
            std::to_string(p.intermediates) + " | " +
            std::to_string(p.schedules),
        FormatBytes(app.dataset(0).bytes) + " | " +
            std::to_string(app.num_datasets()) + " | " +
            std::to_string(intermediates) + " | " +
            std::to_string(schedules->size()));
  }
  std::printf("\n");
  table.Print(std::cout);
  return 0;
}
