// Micro-benchmarks (google-benchmark): raw throughput of the simulator and
// of Juggler's algorithmic pieces, plus the ablation the DESIGN.md calls
// out (metrics derived from instrumentation vs Algorithm 1 runtime).

#include <benchmark/benchmark.h>

#include "core/dataset_metrics.h"
#include "core/hotspot.h"
#include "core/parameter_calibration.h"
#include "math/nnls.h"
#include "minispark/engine.h"
#include "workloads/workloads.h"

namespace {

using namespace juggler;  // NOLINT

minispark::RunOptions Quiet() {
  minispark::RunOptions o;
  o.noise_sigma = 0.0;
  o.straggler_prob = 0.0;
  return o;
}

void BM_EngineRunSvm(benchmark::State& state) {
  const auto w = workloads::GetWorkload("svm").value();
  minispark::AppParams p = w.paper_params;
  p.iterations = static_cast<int>(state.range(0));
  const auto app = w.make(p);
  minispark::Engine engine(Quiet());
  for (auto _ : state) {
    auto r = engine.RunDefault(app, minispark::PaperCluster(8));
    benchmark::DoNotOptimize(r->duration_ms);
  }
  state.SetItemsProcessed(state.iterations() * p.iterations);
}
BENCHMARK(BM_EngineRunSvm)->Arg(10)->Arg(100);

void BM_EngineRunPca(benchmark::State& state) {
  // PCA stresses the planner: ~1800 datasets, ~100 jobs.
  const auto w = workloads::GetWorkload("pca").value();
  const auto app = w.make(w.paper_params);
  minispark::Engine engine(Quiet());
  for (auto _ : state) {
    auto r = engine.RunDefault(app, minispark::PaperCluster(4));
    benchmark::DoNotOptimize(r->duration_ms);
  }
}
BENCHMARK(BM_EngineRunPca);

void BM_InstrumentedRun(benchmark::State& state) {
  const auto w = workloads::GetWorkload("lor").value();
  const auto app = w.make(minispark::AppParams{2000, 500, 3});
  minispark::RunOptions o = Quiet();
  o.instrument = true;
  minispark::Engine engine(o);
  for (auto _ : state) {
    auto r = engine.RunDefault(app, minispark::TrainingNode());
    benchmark::DoNotOptimize(r->profile);
  }
}
BENCHMARK(BM_InstrumentedRun);

void BM_DeriveMetrics(benchmark::State& state) {
  const auto w = workloads::GetWorkload("lor").value();
  const auto app = w.make(minispark::AppParams{2000, 500, 3});
  minispark::RunOptions o = Quiet();
  o.instrument = true;
  minispark::Engine engine(o);
  const auto run = engine.RunDefault(app, minispark::TrainingNode());
  for (auto _ : state) {
    auto metrics = core::DeriveDatasetMetrics(*run->profile);
    benchmark::DoNotOptimize(metrics);
  }
}
BENCHMARK(BM_DeriveMetrics);

void BM_HotspotDetection(benchmark::State& state) {
  const auto w = workloads::GetWorkload("svm").value();
  const auto app = w.make(minispark::AppParams{2000, 500,
                                               static_cast<int>(state.range(0))});
  minispark::RunOptions o = Quiet();
  o.instrument = true;
  minispark::Engine engine(o);
  const auto run = engine.RunDefault(app, minispark::TrainingNode());
  const auto metrics = core::DeriveDatasetMetrics(*run->profile).value();
  const auto dag = core::BuildMergedDag(*run->profile);
  for (auto _ : state) {
    auto schedules = core::DetectHotspots(dag, metrics);
    benchmark::DoNotOptimize(schedules);
  }
}
BENCHMARK(BM_HotspotDetection)->Arg(3)->Arg(20);

void BM_NnlsFit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(99);
  math::Matrix a(n, 4);
  std::vector<double> b(static_cast<size_t>(n));
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < 4; ++c) a(r, c) = rng.Uniform(0, 2);
    b[static_cast<size_t>(r)] = rng.Uniform(0, 10);
  }
  for (auto _ : state) {
    std::vector<double> x;
    auto st = math::NonNegativeLeastSquares(a, b, &x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_NnlsFit)->Arg(9)->Arg(100);

}  // namespace

BENCHMARK_MAIN();
