// cluster_sizing: how the optimization models transfer across machine types
// (§6.2). Trains Juggler once, then asks for the recommended cluster
// configuration of the first schedule across several cloud-instance-like
// machine types and input scales — without any new experiments.
//
// Usage: ./build/examples/cluster_sizing [workload] (default: svm)

#include <iostream>

#include "common/table_printer.h"
#include "common/units.h"
#include "core/juggler.h"
#include "workloads/workloads.h"

using namespace juggler;  // NOLINT

namespace {

struct MachineType {
  const char* name;
  double memory_bytes;
  int cores;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "svm";
  auto workload = workloads::GetWorkload(name);
  if (!workload.ok()) {
    std::cerr << workload.status().ToString() << "\n";
    return 1;
  }

  core::JugglerConfig config;
  config.time_grid = core::TrainingGrid{
      {0.4 * workload->paper_params.examples, 0.7 * workload->paper_params.examples,
       workload->paper_params.examples},
      {0.4 * workload->paper_params.features, 0.7 * workload->paper_params.features,
       workload->paper_params.features},
      workload->paper_params.iterations};
  config.memory_reference = workload->paper_params;

  std::cout << "Training Juggler for '" << name << "' ...\n";
  auto training = core::TrainJuggler(name, workload->make, config);
  if (!training.ok()) {
    std::cerr << training.status().ToString() << "\n";
    return 1;
  }
  const auto& juggler = training->trained;
  std::printf("Memory factor: %.3f (independent of the machine type)\n\n",
              juggler.memory().memory_factor);

  // Cloud-instance-like machine types. Only the memory per machine matters
  // for the cluster configuration (§5.3's discussion).
  const MachineType kTypes[] = {
      {"small  (8 GB)", GiB(8), 4},
      {"paper  (12 GB)", GiB(12), 4},
      {"large  (24 GB)", GiB(24), 8},
      {"xlarge (48 GB)", GiB(48), 16},
  };

  TablePrinter table({"Machine type", "M per machine", "Cache per machine",
                      "Scale 0.5x", "Scale 1x", "Scale 2x"});
  for (const MachineType& type : kTypes) {
    minispark::ClusterConfig machine = minispark::PaperCluster(1);
    machine.executor_memory_bytes = type.memory_bytes;
    machine.cores_per_machine = type.cores;

    std::vector<std::string> row = {
        type.name, FormatBytes(machine.UnifiedMemoryPerMachine()),
        FormatBytes(machine.UnifiedMemoryPerMachine() *
                    juggler.memory().memory_factor)};
    for (double scale : {0.5, 1.0, 2.0}) {
      minispark::AppParams params = workload->paper_params;
      params.examples *= scale;
      auto recs = juggler.RecommendAll(params, machine);
      if (!recs.ok()) {
        std::cerr << recs.status().ToString() << "\n";
        return 1;
      }
      row.push_back(std::to_string(recs->front().machines) + " machines");
    }
    table.AddRow(row);
  }
  table.Print(std::cout);

  std::printf(
      "\nThe recommendation is #machines = ceil(schedule size / (M x memory\n"
      "factor)) — Equations 5-6. Bigger machines or smaller inputs need\n"
      "fewer machines; no re-training was required for any row.\n");
  return 0;
}
