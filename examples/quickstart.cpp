// Quickstart: train Juggler offline for one application, then ask it for
// schedule recommendations at user-selected parameters — the paper's §5.5
// end-to-end flow.
//
// Build & run:  ./build/examples/quickstart [workload] (default: svm)

#include <cstdio>
#include <iostream>

#include "common/table_printer.h"
#include "common/units.h"
#include "core/juggler.h"
#include "minispark/engine.h"
#include "workloads/workloads.h"

using namespace juggler;                 // NOLINT
using minispark::AppParams;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "svm";
  auto workload = workloads::GetWorkload(name);
  if (!workload.ok()) {
    std::cerr << workload.status().ToString() << "\n";
    return 1;
  }

  // Offline training: four stages, run once per application (§5).
  core::JugglerConfig config;
  config.time_grid = core::TrainingGrid{
      {0.4 * workload->paper_params.examples,
       0.7 * workload->paper_params.examples, workload->paper_params.examples},
      {0.4 * workload->paper_params.features,
       0.7 * workload->paper_params.features, workload->paper_params.features},
      workload->paper_params.iterations};
  config.memory_reference = workload->paper_params;
  config.machine_type = minispark::PaperCluster(1);

  std::cout << "Training Juggler for '" << name << "' ...\n";
  auto training = core::TrainJuggler(name, workload->make, config);
  if (!training.ok()) {
    std::cerr << "training failed: " << training.status().ToString() << "\n";
    return 1;
  }
  const core::TrainedJuggler& juggler = training->trained;

  std::cout << "\nDetected schedules:\n";
  for (const auto& schedule : juggler.schedules()) {
    std::cout << "  SCHEDULE #" << schedule.id << ": "
              << schedule.plan.ToString()
              << "  (memory " << FormatBytes(schedule.memory_bytes)
              << ", benefit " << FormatTime(schedule.benefit_ms) << ")\n";
  }
  std::printf("Memory factor: %.3f\n", juggler.memory().memory_factor);
  std::printf("Training cost: %.1f machine-min (optimization %.1f, prediction %.1f)\n",
              training->costs.Total(), training->costs.Optimization(),
              training->costs.Prediction());

  // Online: the end user picks parameters; Juggler answers instantly from
  // its models — no new experiments.
  const AppParams user = workload->paper_params;
  auto recs = juggler.Recommend(user, minispark::PaperCluster(1));
  if (!recs.ok()) {
    std::cerr << "recommendation failed: " << recs.status().ToString() << "\n";
    return 1;
  }

  std::cout << "\nRecommendations for examples=" << user.examples
            << " features=" << user.features
            << " iterations=" << user.iterations << ":\n";
  TablePrinter table({"Schedule", "Plan", "Cached size", "#Machines",
                      "Pred. time", "Pred. cost (machine min)"});
  for (const auto& r : *recs) {
    table.AddRow({"#" + std::to_string(r.schedule_id), r.plan.ToString(),
                  FormatBytes(r.predicted_bytes), std::to_string(r.machines),
                  FormatTime(r.predicted_time_ms),
                  TablePrinter::Num(r.predicted_cost_machine_min)});
  }
  table.Print(std::cout);

  // Validate one recommendation with an actual run.
  if (!recs->empty()) {
    const auto& r = recs->front();
    minispark::Engine engine(minispark::RunOptions{});
    auto run = engine.Run(workload->make(user),
                          minispark::PaperCluster(r.machines), r.plan);
    if (run.ok()) {
      std::printf("\nActual run of SCHEDULE #%d on %d machines: %s "
                  "(%.1f machine-min; predicted %.1f)\n",
                  r.schedule_id, r.machines, FormatTime(run->duration_ms).c_str(),
                  run->CostMachineMinutes(), r.predicted_cost_machine_min);
    }
  }
  return 0;
}
