// cache_advisor: the lower-level API tour. Runs one instrumented sample run
// of an application, derives the §3 dataset metrics (computations, sizes,
// operator-level execution times), and walks Algorithm 1's reasoning —
// benefits, benefit-cost ratios, and the resulting SCHEDULES — the way the
// paper's §5.1 example does for Logistic Regression.
//
// Usage: ./build/examples/cache_advisor [workload] (default: lor)

#include <algorithm>
#include <iostream>

#include "common/table_printer.h"
#include "common/units.h"
#include "core/dataset_metrics.h"
#include "core/hotspot.h"
#include "minispark/engine.h"
#include "workloads/workloads.h"

using namespace juggler;  // NOLINT

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "lor";
  auto workload = workloads::GetWorkload(name);
  if (!workload.ok()) {
    std::cerr << workload.status().ToString() << "\n";
    return 1;
  }

  // One sample run on the small training node, instrumented (Spark_i role):
  // a tiny data sample and few iterations keep the overhead minimal (§5.1).
  const minispark::AppParams sample{2000, 500, 3};
  minispark::RunOptions options;
  options.instrument = true;
  minispark::Engine engine(options);
  const auto app = workload->make(sample);
  auto run = engine.RunDefault(app, minispark::TrainingNode());
  if (!run.ok()) {
    std::cerr << "sample run failed: " << run.status().ToString() << "\n";
    return 1;
  }
  std::printf("Sample run of '%s' (%g x %g, %d iterations): %s, %zu jobs,\n"
              "%zu transformation records collected.\n\n",
              name.c_str(), sample.examples, sample.features, sample.iterations,
              FormatTime(run->duration_ms).c_str(), run->profile->jobs().size(),
              run->profile->transforms().size());

  // §3 dataset metrics, reconstructed purely from the instrumentation.
  auto metrics = core::DeriveDatasetMetrics(*run->profile);
  if (!metrics.ok()) {
    std::cerr << metrics.status().ToString() << "\n";
    return 1;
  }
  const core::MergedDag dag = core::BuildMergedDag(*run->profile);

  std::printf("Intermediate datasets (computed more than once):\n");
  TablePrinter table({"Dataset", "#Computations", "Execution time", "Size",
                      "Benefit", "BCR (ms/MB)"});
  std::vector<double> et(static_cast<size_t>(dag.num_datasets()), 0.0);
  for (const auto& m : *metrics) et[static_cast<size_t>(m.id)] = m.compute_time_ms;
  for (const auto& m : *metrics) {
    if (m.computations <= 1) continue;
    const double benefit =
        core::CachingBenefitMs(dag, et, {}, m.computations, m.id);
    table.AddRow({m.name, std::to_string(m.computations),
                  FormatTime(m.compute_time_ms), FormatBytes(m.size_bytes),
                  FormatTime(benefit),
                  TablePrinter::Num(benefit / ToMiB(m.size_bytes), 2)});
  }
  table.Print(std::cout);

  // Algorithm 1.
  auto schedules = core::DetectHotspots(dag, *metrics);
  if (!schedules.ok()) {
    std::cerr << schedules.status().ToString() << "\n";
    return 1;
  }
  std::printf("\nDetected SCHEDULES (incremental; later = more caching):\n");
  for (const auto& s : *schedules) {
    std::printf("  #%d  %-36s memory %-10s benefit %s\n", s.id,
                s.plan.ToString().c_str(), FormatBytes(s.memory_bytes).c_str(),
                FormatTime(s.benefit_ms).c_str());
  }

  // Show what the ablations (the related components' blind spots) would do.
  core::HotspotOptions no_reeval;
  no_reeval.reevaluate = false;
  auto nagel_like = core::DetectHotspots(dag, *metrics, no_reeval);
  if (nagel_like.ok() && !nagel_like->empty() &&
      nagel_like->back().plan.ToString() != schedules->back().plan.ToString()) {
    std::printf("\nWithout re-evaluation (Nagel-style), the last schedule would"
                " be:\n  %s (memory %s)\n",
                nagel_like->back().plan.ToString().c_str(),
                FormatBytes(nagel_like->back().memory_bytes).c_str());
  }
  std::printf("\nCompare with the developer (HiBench) default: %s\n",
              app.default_plan.ToString().c_str());
  return 0;
}
