// juggler_serve: the online serving subsystem (§5.5) as a process — an HTTP
// front end over RecommendationService by default, an interactive REPL with
// --stdin, or one node of the horizontal serving tier with --role.
//
//   juggler_serve <model-dir> [flags]
//
//   --train             train any missing paper workload into <model-dir>
//                       (full offline recipe, §5.1-§5.4)
//   --train-fast        like --train but on a small deterministic grid
//                       (seconds instead of minutes; for smoke tests)
//   --role R            standalone (default) | shard | router
//   --host H            bind address            (default 127.0.0.1)
//   --port P            bind port, 0=ephemeral  (default 8080; the HTTP
//                       port for standalone/router, the RPC port for shard)
//   --workers N         evaluation worker threads        (default 4)
//   --queue-capacity N  evaluation queue slots           (default 1024)
//   --cache-capacity N  prediction cache entries         (default 4096)
//   --handler-threads N HTTP/RPC handler threads         (default 4)
//   --eval-delay-ms N   artificial delay before each evaluation (testing
//                       backpressure; default 0)
//   --stdin             REPL on stdin instead of the HTTP server
//
// Online-adaptation flags (standalone and shard roles):
//   --online                     run the feedback loop: POST /v1/observe (or
//                                kObserve frames) feed live outcomes; models
//                                refit, pass a holdout gate, and republish
//                                into <model-dir> without a restart
//   --online-min-records N       refit an app once N observations buffer
//                                (default 24)
//   --online-interval-ms N       also refit at most every N ms when at least
//                                a holdout's worth is buffered (default 2000,
//                                0=off)
//   --online-error-threshold X   also refit when observed-vs-predicted mean
//                                relative error exceeds X (default 0, off)
//
// Shard-role flags (lazy model memory policy):
//   --max-loaded-models N  models resident at once, 0=unlimited (default 0)
//   --model-ttl-ms N       evict models idle this long, 0=off   (default 0)
//
// Router-role flags:
//   --shards LIST          comma-separated host:port backends (required)
//   --probe-interval-ms N  shard health-probe cadence   (default 250)
//   --rpc-timeout-ms N     per-call budget to a shard   (default 5000)
//
// Standalone/router mode prints "listening on http://HOST:PORT (BACKEND)"
// once ready; shard mode prints "shard listening on rpc://HOST:PORT
// (BACKEND)". All serve until SIGINT/SIGTERM; REPL mode reads one command
// per line:
//
//   <app> <examples> <features> [iterations] [machine-GB]   answer a query
//   reload      re-scan the model directory (hot, never blocks requests)
//   stats       cache hit rate, latency percentiles, registry version
//   apps        list registered applications
//   quit        exit
//
// Both modes print a serving-stats summary on every clean shutdown (quit,
// stdin EOF, SIGINT, SIGTERM) and exit 0.
//
// Example HTTP session:
//   $ juggler_serve /tmp/models --train &
//   $ curl localhost:8080/healthz
//   $ curl -X POST localhost:8080/v1/recommend
//       -d '{"app":"svm","params":{"examples":40000,"features":80000}}'
//   $ curl localhost:8080/metrics

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/router.h"
#include "cluster/shard_server.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "core/juggler.h"
#include "core/serialization.h"
#include "net/http_recommend_server.h"
#include "online/online_loop.h"
#include "online/online_metrics.h"
#include "service/model_registry.h"
#include "service/recommendation_service.h"
#include "workloads/workloads.h"

using namespace juggler;  // NOLINT

namespace {

namespace fs = std::filesystem;

volatile std::sig_atomic_t g_signal = 0;

void OnSignal(int signum) { g_signal = signum; }

/// Installs `OnSignal` without SA_RESTART, so a blocking stdin read in REPL
/// mode is interrupted (EINTR) and both modes fall through to the stats
/// summary instead of dying mid-loop.
void InstallSignalHandlers() {
  struct sigaction action = {};
  action.sa_handler = OnSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

int Usage() {
  std::cerr
      << "usage: juggler_serve <model-dir> [--train|--train-fast] [--host H] "
         "[--port P]\n"
         "                     [--role standalone|shard|router] "
         "[--shards H:P,H:P,...]\n"
         "                     [--workers N] [--queue-capacity N] "
         "[--cache-capacity N]\n"
         "                     [--handler-threads N] [--eval-delay-ms N] "
         "[--stdin]\n"
         "                     [--max-loaded-models N] [--model-ttl-ms N]\n"
         "                     [--probe-interval-ms N] [--rpc-timeout-ms N]\n"
         "                     [--online] [--online-min-records N]\n"
         "                     [--online-interval-ms N] "
         "[--online-error-threshold X]\n"
         "stdin commands (with --stdin): <app> <examples> <features> "
         "[iterations] [machine-GB] | reload | stats | apps | quit\n";
  return 2;
}

/// Splits "host:port,host:port" on commas (empty pieces dropped).
std::vector<std::string> SplitShards(const std::string& list) {
  std::vector<std::string> shards;
  size_t begin = 0;
  while (begin <= list.size()) {
    size_t comma = list.find(',', begin);
    if (comma == std::string::npos) comma = list.size();
    if (comma > begin) shards.push_back(list.substr(begin, comma - begin));
    begin = comma + 1;
  }
  return shards;
}

/// Trains every paper workload missing from `dir`. The full recipe is the
/// juggler_cli one (0.4x-1x of the paper's parameters); `fast` swaps in the
/// small deterministic grid the tests use, turning minutes into seconds.
int TrainMissing(const fs::path& dir, bool fast) {
  fs::create_directories(dir);
  for (const auto& w : workloads::AllWorkloads()) {
    const fs::path path = dir / (w.name + service::ModelRegistry::kModelSuffix);
    if (fs::exists(path)) {
      std::printf("have    %s\n", path.c_str());
      continue;
    }
    core::JugglerConfig config;
    if (fast) {
      config.time_grid =
          core::TrainingGrid{{4000, 8000, 16000}, {1000, 2000, 4000}, 5};
      config.run_options.noise_sigma = 0.0;
      config.run_options.straggler_prob = 0.0;
    } else {
      config.time_grid = core::TrainingGrid{
          {0.4 * w.paper_params.examples, 0.7 * w.paper_params.examples,
           w.paper_params.examples},
          {0.4 * w.paper_params.features, 0.7 * w.paper_params.features,
           w.paper_params.features},
          w.paper_params.iterations};
    }
    config.memory_reference = w.paper_params;
    std::printf("training %s (four offline stages%s)...\n", w.name.c_str(),
                fast ? ", fast grid" : "");
    auto training = core::TrainJuggler(w.name, w.make, config);
    if (!training.ok()) {
      std::fprintf(stderr, "training %s failed: %s\n", w.name.c_str(),
                   training.status().ToString().c_str());
      return 1;
    }
    std::ofstream out(path);
    if (auto st = core::SaveTrainedJuggler(training->trained, out);
        !st.ok() || !out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("trained %s (%zu schedules, %.1f machine-min)\n", path.c_str(),
                training->trained.schedules().size(), training->costs.Total());
  }
  return 0;
}

void PrintResponse(const service::RecommendRequest& request,
                   const service::RecommendResponse& response) {
  std::printf("%s @ examples=%g features=%g iterations=%d [%s, model v%llu]\n",
              request.app.c_str(), request.params.examples,
              request.params.features, request.params.iterations,
              response.cache_hit ? "cache hit" : "evaluated",
              static_cast<unsigned long long>(response.model_version));
  TablePrinter table({"Schedule", "Plan", "Cached size", "#Machines",
                      "Pred. time", "Pred. cost (machine min)"});
  for (const auto& r : *response.recommendations) {
    std::string id = "#";
    id += std::to_string(r.schedule_id);
    table.AddRow({std::move(id), r.plan.ToString(),
                  FormatBytes(r.predicted_bytes), std::to_string(r.machines),
                  FormatTime(r.predicted_time_ms),
                  TablePrinter::Num(r.predicted_cost_machine_min)});
  }
  table.Print(std::cout);
}

void PrintStats(const service::RecommendationService::Stats& stats,
                uint64_t registry_version, size_t registry_size) {
  std::printf(
      "serving stats: registry v%llu (%zu models) | requests %llu | "
      "hit rate %.1f %% | evaluations %llu | rejected %llu\n",
      static_cast<unsigned long long>(registry_version), registry_size,
      static_cast<unsigned long long>(stats.latency.count),
      100.0 * stats.cache.HitRate(),
      static_cast<unsigned long long>(stats.evaluations),
      static_cast<unsigned long long>(stats.rejected));
  std::printf(
      "latency: p50 %.1f us | p95 %.1f us | max %.1f us | mean %.1f us\n",
      stats.latency.p50_us, stats.latency.p95_us, stats.latency.max_us,
      stats.latency.MeanUs());
  for (const auto& [app, s] : stats.per_app) {
    std::printf("  %-12s requests %llu | hits %llu | misses %llu | "
                "evaluations %llu | p95 %.1f us\n",
                app.c_str(), static_cast<unsigned long long>(s.requests),
                static_cast<unsigned long long>(s.cache_hits),
                static_cast<unsigned long long>(s.cache_misses),
                static_cast<unsigned long long>(s.evaluations),
                s.latency.p95_us);
  }
}

int RunRepl(const std::shared_ptr<service::ModelRegistry>& registry,
            service::RecommendationService& svc) {
  std::printf("serving %zu model(s) — try: svm 40000 80000\n",
              registry->size());
  std::string line;
  while (g_signal == 0 &&
         (std::printf("> "), std::fflush(stdout),
          std::getline(std::cin, line))) {
    std::istringstream in(line);
    std::string command;
    if (!(in >> command)) continue;
    if (command == "quit" || command == "exit") break;
    if (command == "reload") {
      if (auto st = registry->Refresh(); !st.ok()) {
        std::printf("reload failed (old models stay active): %s\n",
                    st.ToString().c_str());
      } else {
        const auto refresh = registry->last_refresh();
        std::printf(
            "registry v%llu: %zu model(s) (%zu parsed, %zu reused, "
            "%zu removed)\n",
            static_cast<unsigned long long>(registry->version()),
            registry->size(), refresh.parsed, refresh.reused, refresh.removed);
      }
      continue;
    }
    if (command == "stats") {
      PrintStats(svc.GetStats(), registry->version(), registry->size());
      continue;
    }
    if (command == "apps") {
      for (const auto& name : registry->AppNames()) {
        std::printf("  %s\n", name.c_str());
      }
      continue;
    }

    service::RecommendRequest request;
    request.app = command;
    int iterations = 1;
    double machine_gb = 12.0;
    if (!(in >> request.params.examples >> request.params.features)) {
      std::printf("expected: <app> <examples> <features> [iterations] "
                  "[machine-GB]\n");
      continue;
    }
    in >> iterations >> machine_gb;
    request.params.iterations = iterations;
    request.machine_type = minispark::PaperCluster(1);
    request.machine_type.executor_memory_bytes = GiB(machine_gb);

    auto response = svc.Recommend(request);
    if (!response.ok()) {
      std::printf("%s\n", response.status().ToString().c_str());
      continue;
    }
    PrintResponse(request, *response);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const fs::path model_dir = argv[1];
  bool train = false;
  bool train_fast = false;
  bool use_stdin = false;
  std::string role = "standalone";
  std::string shards_list;
  std::string host = "127.0.0.1";
  int port = 8080;
  int workers = 4;
  int queue_capacity = 1024;
  int cache_capacity = 4096;
  int handler_threads = 4;
  int eval_delay_ms = 0;
  int max_loaded_models = 0;
  int model_ttl_ms = 0;
  int probe_interval_ms = 250;
  int rpc_timeout_ms = 5000;
  bool online = false;
  int online_min_records = 24;
  int online_interval_ms = 2000;
  double online_error_threshold = 0.0;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--train") {
      train = true;
    } else if (arg == "--train-fast") {
      train = train_fast = true;
    } else if (arg == "--stdin") {
      use_stdin = true;
    } else if (arg == "--role" && has_value) {
      role = argv[++i];
    } else if (arg == "--shards" && has_value) {
      shards_list = argv[++i];
    } else if (arg == "--host" && has_value) {
      host = argv[++i];
    } else if (arg == "--port" && has_value) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--workers" && has_value) {
      workers = std::atoi(argv[++i]);
    } else if (arg == "--queue-capacity" && has_value) {
      queue_capacity = std::atoi(argv[++i]);
    } else if (arg == "--cache-capacity" && has_value) {
      cache_capacity = std::atoi(argv[++i]);
    } else if (arg == "--handler-threads" && has_value) {
      handler_threads = std::atoi(argv[++i]);
    } else if (arg == "--eval-delay-ms" && has_value) {
      eval_delay_ms = std::atoi(argv[++i]);
    } else if (arg == "--max-loaded-models" && has_value) {
      max_loaded_models = std::atoi(argv[++i]);
    } else if (arg == "--model-ttl-ms" && has_value) {
      model_ttl_ms = std::atoi(argv[++i]);
    } else if (arg == "--probe-interval-ms" && has_value) {
      probe_interval_ms = std::atoi(argv[++i]);
    } else if (arg == "--rpc-timeout-ms" && has_value) {
      rpc_timeout_ms = std::atoi(argv[++i]);
    } else if (arg == "--online") {
      online = true;
    } else if (arg == "--online-min-records" && has_value) {
      online_min_records = std::atoi(argv[++i]);
    } else if (arg == "--online-interval-ms" && has_value) {
      online_interval_ms = std::atoi(argv[++i]);
    } else if (arg == "--online-error-threshold" && has_value) {
      online_error_threshold = std::atof(argv[++i]);
    } else {
      return Usage();
    }
  }
  if (port < 0 || port > 65535 || workers < 1 || queue_capacity < 1 ||
      cache_capacity < 1 || handler_threads < 1 || eval_delay_ms < 0 ||
      max_loaded_models < 0 || model_ttl_ms < 0 || probe_interval_ms < 1 ||
      rpc_timeout_ms < 1 || online_min_records < 1 || online_interval_ms < 0 ||
      online_error_threshold < 0.0) {
    return Usage();
  }
  if (online && role == "router") {
    std::fprintf(stderr,
                 "--online applies to standalone/shard roles (the router "
                 "forwards observations, it never refits)\n");
    return Usage();
  }
  if (role != "standalone" && role != "shard" && role != "router") {
    std::fprintf(stderr, "--role must be standalone, shard, or router\n");
    return Usage();
  }
  if (role == "router" && shards_list.empty()) {
    std::fprintf(stderr, "--role router requires --shards host:port,...\n");
    return Usage();
  }
  if (use_stdin && role != "standalone") {
    std::fprintf(stderr, "--stdin only works with --role standalone\n");
    return Usage();
  }

  if (train) {
    if (int rc = TrainMissing(model_dir, train_fast); rc != 0) return rc;
  }

  if (role == "router") {
    // The router holds no models: it hashes questions across the shard
    // fleet and forwards. <model-dir> is accepted (so all three roles share
    // a command line) but not opened.
    cluster::Router::Options router_options;
    router_options.shards = SplitShards(shards_list);
    router_options.probe_interval_ms = probe_interval_ms;
    router_options.rpc_timeout_ms = rpc_timeout_ms;
    auto router = cluster::Router::Create(router_options);
    if (!router.ok()) {
      std::fprintf(stderr, "%s\n", router.status().ToString().c_str());
      return 1;
    }
    if (auto st = (*router)->Start(); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    cluster::RouterHttpServer::Options server_options;
    server_options.http.host = host;
    server_options.http.port = static_cast<uint16_t>(port);
    server_options.http.num_handler_threads = handler_threads;
    cluster::RouterHttpServer server(router->get(), server_options);
    if (auto st = server.Start(); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    InstallSignalHandlers();
    std::printf("routing across %zu shard(s)\n", (*router)->shard_count());
    std::printf("listening on http://%s:%u (%s)\n", host.c_str(),
                static_cast<unsigned>(server.port()),
                server.backend().c_str());
    std::fflush(stdout);
    while (g_signal == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::printf("\nsignal %d: shutting down\n", static_cast<int>(g_signal));
    server.Stop();
    (*router)->Stop();
    for (const auto& s : (*router)->GetShardStats()) {
      std::printf("shard %s: %s | requests %llu | errors %llu | p95 %.1f us\n",
                  s.address.c_str(), s.healthy ? "healthy" : "down",
                  static_cast<unsigned long long>(s.requests),
                  static_cast<unsigned long long>(s.errors),
                  s.latency.p95_us);
    }
    std::printf("router stats: reroutes %llu | probes %llu\n",
                static_cast<unsigned long long>((*router)->reroutes()),
                static_cast<unsigned long long>((*router)->probes()));
    return 0;
  }

  service::ModelRegistry::Options registry_options;
  // A shard only loads the models the router's hash steers to it; the flags
  // also opt standalone mode into the same bounded-memory policy.
  registry_options.lazy_load =
      role == "shard" || max_loaded_models > 0 || model_ttl_ms > 0;
  registry_options.max_loaded = static_cast<size_t>(max_loaded_models);
  registry_options.ttl_ms = model_ttl_ms;
  auto registry = std::make_shared<service::ModelRegistry>(model_dir.string(),
                                                           registry_options);
  if (auto st = registry->Refresh(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  service::RecommendationService::Options options;
  options.num_workers = workers;
  options.queue_capacity = static_cast<size_t>(queue_capacity);
  options.cache.capacity = static_cast<size_t>(cache_capacity);
  if (eval_delay_ms > 0) {
    options.pre_eval_hook = [eval_delay_ms] {
      std::this_thread::sleep_for(std::chrono::milliseconds(eval_delay_ms));
    };
  }
  auto svc =
      std::make_shared<service::RecommendationService>(registry, options);

  std::shared_ptr<online::OnlineJuggler> online_loop;
  if (online) {
    online::OnlineJuggler::Options online_options;
    online_options.refit.min_records = static_cast<size_t>(online_min_records);
    online_options.refit.interval_ms = online_interval_ms;
    online_options.refit.error_threshold = online_error_threshold;
    online_loop =
        std::make_shared<online::OnlineJuggler>(registry, svc, online_options);
    online_loop->Start();
    std::printf("online adaptation on: min-records %d | interval %d ms | "
                "error threshold %g\n",
                online_min_records, online_interval_ms,
                online_error_threshold);
  }

  InstallSignalHandlers();

  int rc = 0;
  if (use_stdin) {
    rc = RunRepl(registry, *svc);
  } else if (role == "shard") {
    cluster::ShardServer::Options server_options;
    server_options.rpc.host = host;
    server_options.rpc.port = static_cast<uint16_t>(port);
    server_options.rpc.num_handler_threads = handler_threads;
    server_options.online = online_loop;
    cluster::ShardServer server(registry, svc, server_options);
    if (auto st = server.Start(); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("serving %zu model(s) from %s (lazy load)\n",
                registry->size(), model_dir.c_str());
    std::printf("shard listening on rpc://%s:%u (%s)\n", host.c_str(),
                static_cast<unsigned>(server.port()),
                server.backend().c_str());
    std::fflush(stdout);
    while (g_signal == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::printf("\nsignal %d: shutting down\n", static_cast<int>(g_signal));
    server.Stop();
    const auto rpc = server.rpc_stats();
    std::printf("rpc stats: accepted %llu | frames %llu | pings %llu | "
                "overload %llu | protocol errors %llu\n",
                static_cast<unsigned long long>(rpc.accepted),
                static_cast<unsigned long long>(rpc.frames),
                static_cast<unsigned long long>(rpc.pings),
                static_cast<unsigned long long>(rpc.overload_rejected),
                static_cast<unsigned long long>(rpc.protocol_errors));
    std::printf("registry: %zu/%zu model(s) resident | evictions %llu\n",
                registry->loaded_models(), registry->size(),
                static_cast<unsigned long long>(registry->evictions()));
  } else {
    net::HttpRecommendServer::Options server_options;
    server_options.http.host = host;
    server_options.http.port = static_cast<uint16_t>(port);
    server_options.http.num_handler_threads = handler_threads;
    server_options.online = online_loop;
    net::HttpRecommendServer server(registry, svc, server_options);
    if (auto st = server.Start(); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("serving %zu model(s) from %s\n", registry->size(),
                model_dir.c_str());
    std::printf("listening on http://%s:%u (%s)\n", host.c_str(),
                static_cast<unsigned>(server.port()),
                server.backend().c_str());
    std::fflush(stdout);
    while (g_signal == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::printf("\nsignal %d: shutting down\n", static_cast<int>(g_signal));
    server.Stop();
    const auto http = server.http_stats();
    std::printf("http stats: accepted %llu | requests %llu | fast path %llu | "
                "overload 503 %llu | parse errors %llu | idle closed %llu\n",
                static_cast<unsigned long long>(http.accepted),
                static_cast<unsigned long long>(http.requests),
                static_cast<unsigned long long>(http.fast_path),
                static_cast<unsigned long long>(http.overload_rejected),
                static_cast<unsigned long long>(http.parse_errors),
                static_cast<unsigned long long>(http.idle_closed));
  }
  if (online_loop != nullptr) {
    online_loop->Stop();
    const online::OnlineStats stats = online::SnapshotOnlineStats();
    std::printf(
        "online stats: ingested %llu | dropped %llu | refits attempted %llu "
        "accepted %llu rejected %llu | rollbacks %llu | model v%llu\n",
        static_cast<unsigned long long>(stats.records_ingested),
        static_cast<unsigned long long>(stats.records_dropped),
        static_cast<unsigned long long>(stats.refits_attempted),
        static_cast<unsigned long long>(stats.refits_accepted),
        static_cast<unsigned long long>(stats.refits_rejected),
        static_cast<unsigned long long>(stats.rollbacks),
        static_cast<unsigned long long>(stats.active_model_version));
  }
  PrintStats(svc->GetStats(), registry->version(), registry->size());
  return rc;
}
