// juggler_serve: the online serving subsystem as an interactive CLI — a
// stand-in for the socket front end a production deployment would put in
// front of RecommendationService.
//
//   juggler_serve <model-dir> [--train] [--workers N]
//
// With --train, any of the five paper workloads missing from <model-dir> is
// trained offline first (§5.1-§5.4) and saved as <app>.model. The registry
// then serves queries read from stdin, one per line:
//
//   <app> <examples> <features> [iterations] [machine-GB]   answer a query
//   reload      re-scan the model directory (hot, never blocks requests)
//   stats       cache hit rate, latency percentiles, registry version
//   apps        list registered applications
//   quit        exit
//
// Example session:
//   $ juggler_serve /tmp/models --train
//   > svm 40000 80000
//   > stats
//   > quit

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/table_printer.h"
#include "common/units.h"
#include "core/juggler.h"
#include "core/serialization.h"
#include "service/model_registry.h"
#include "service/recommendation_service.h"
#include "workloads/workloads.h"

using namespace juggler;  // NOLINT

namespace {

namespace fs = std::filesystem;

int Usage() {
  std::cerr << "usage: juggler_serve <model-dir> [--train] [--workers N]\n"
               "stdin commands: <app> <examples> <features> [iterations] "
               "[machine-GB] | reload | stats | apps | quit\n";
  return 2;
}

/// Trains every paper workload missing from `dir` (the juggler_cli training
/// recipe: 0.4x-1x of the paper's parameters).
int TrainMissing(const fs::path& dir) {
  fs::create_directories(dir);
  for (const auto& w : workloads::AllWorkloads()) {
    const fs::path path = dir / (w.name + service::ModelRegistry::kModelSuffix);
    if (fs::exists(path)) {
      std::printf("have    %s\n", path.c_str());
      continue;
    }
    core::JugglerConfig config;
    config.time_grid = core::TrainingGrid{
        {0.4 * w.paper_params.examples, 0.7 * w.paper_params.examples,
         w.paper_params.examples},
        {0.4 * w.paper_params.features, 0.7 * w.paper_params.features,
         w.paper_params.features},
        w.paper_params.iterations};
    config.memory_reference = w.paper_params;
    std::printf("training %s (four offline stages)...\n", w.name.c_str());
    auto training = core::TrainJuggler(w.name, w.make, config);
    if (!training.ok()) {
      std::fprintf(stderr, "training %s failed: %s\n", w.name.c_str(),
                   training.status().ToString().c_str());
      return 1;
    }
    std::ofstream out(path);
    if (auto st = core::SaveTrainedJuggler(training->trained, out);
        !st.ok() || !out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("trained %s (%zu schedules, %.1f machine-min)\n", path.c_str(),
                training->trained.schedules().size(), training->costs.Total());
  }
  return 0;
}

void PrintResponse(const service::RecommendRequest& request,
                   const service::RecommendResponse& response) {
  std::printf("%s @ examples=%g features=%g iterations=%d [%s, model v%llu]\n",
              request.app.c_str(), request.params.examples,
              request.params.features, request.params.iterations,
              response.cache_hit ? "cache hit" : "evaluated",
              static_cast<unsigned long long>(response.model_version));
  TablePrinter table({"Schedule", "Plan", "Cached size", "#Machines",
                      "Pred. time", "Pred. cost (machine min)"});
  for (const auto& r : *response.recommendations) {
    table.AddRow({"#" + std::to_string(r.schedule_id), r.plan.ToString(),
                  FormatBytes(r.predicted_bytes), std::to_string(r.machines),
                  FormatTime(r.predicted_time_ms),
                  TablePrinter::Num(r.predicted_cost_machine_min)});
  }
  table.Print(std::cout);
}

void PrintStats(const service::RecommendationService::Stats& stats,
                uint64_t registry_version, size_t registry_size) {
  std::printf(
      "registry v%llu (%zu models) | requests %llu | hit rate %.1f %% | "
      "evaluations %llu | rejected %llu\n",
      static_cast<unsigned long long>(registry_version), registry_size,
      static_cast<unsigned long long>(stats.latency.count),
      100.0 * stats.cache.HitRate(),
      static_cast<unsigned long long>(stats.evaluations),
      static_cast<unsigned long long>(stats.rejected));
  std::printf("latency: p50 %.1f us | p95 %.1f us | max %.1f us | mean %.1f us\n",
              stats.latency.p50_us, stats.latency.p95_us, stats.latency.max_us,
              stats.latency.MeanUs());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const fs::path model_dir = argv[1];
  bool train = false;
  int workers = 4;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--train") {
      train = true;
    } else if (arg == "--workers" && i + 1 < argc) {
      workers = std::atoi(argv[++i]);
    } else {
      return Usage();
    }
  }

  if (train) {
    if (int rc = TrainMissing(model_dir); rc != 0) return rc;
  }

  auto registry = std::make_shared<service::ModelRegistry>(model_dir.string());
  if (auto st = registry->Refresh(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  service::RecommendationService::Options options;
  options.num_workers = workers;
  service::RecommendationService svc(registry, options);

  std::printf("serving %zu model(s) from %s — try: svm 40000 80000\n",
              registry->size(), model_dir.c_str());
  std::string line;
  while (std::printf("> "), std::fflush(stdout), std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string command;
    if (!(in >> command)) continue;
    if (command == "quit" || command == "exit") break;
    if (command == "reload") {
      if (auto st = registry->Refresh(); !st.ok()) {
        std::printf("reload failed (old models stay active): %s\n",
                    st.ToString().c_str());
      } else {
        std::printf("registry v%llu: %zu model(s)\n",
                    static_cast<unsigned long long>(registry->version()),
                    registry->size());
      }
      continue;
    }
    if (command == "stats") {
      PrintStats(svc.GetStats(), registry->version(), registry->size());
      continue;
    }
    if (command == "apps") {
      for (const auto& name : registry->AppNames()) {
        std::printf("  %s\n", name.c_str());
      }
      continue;
    }

    service::RecommendRequest request;
    request.app = command;
    int iterations = 1;
    double machine_gb = 12.0;
    if (!(in >> request.params.examples >> request.params.features)) {
      std::printf("expected: <app> <examples> <features> [iterations] "
                  "[machine-GB]\n");
      continue;
    }
    in >> iterations >> machine_gb;
    request.params.iterations = iterations;
    request.machine_type = minispark::PaperCluster(1);
    request.machine_type.executor_memory_bytes = GiB(machine_gb);

    auto response = svc.Recommend(request);
    if (!response.ok()) {
      std::printf("%s\n", response.status().ToString().c_str());
      continue;
    }
    PrintResponse(request, *response);
  }
  return 0;
}
