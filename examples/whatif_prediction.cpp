// whatif_prediction: the §5.5 end-user experience. Trains Juggler once for a
// workload, then explores "what if I ran with these parameters?" questions
// across a parameter sweep — predicted time, cost and the recommended
// schedule per point, each validated against one actual (simulated) run.
//
// Usage: ./build/examples/whatif_prediction [workload] (default: lor)

#include <iostream>

#include "common/table_printer.h"
#include "common/units.h"
#include "core/juggler.h"
#include "math/stats.h"
#include "minispark/engine.h"
#include "workloads/workloads.h"

using namespace juggler;  // NOLINT

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "lor";
  auto workload = workloads::GetWorkload(name);
  if (!workload.ok()) {
    std::cerr << workload.status().ToString() << "\n";
    return 1;
  }
  const minispark::AppParams base = workload->paper_params;

  core::JugglerConfig config;
  config.time_grid = core::TrainingGrid{
      {0.4 * base.examples, 0.7 * base.examples, base.examples},
      {0.4 * base.features, 0.7 * base.features, base.features},
      base.iterations};
  config.memory_reference = base;

  std::cout << "Training Juggler for '" << name << "' ...\n";
  auto training = core::TrainJuggler(name, workload->make, config);
  if (!training.ok()) {
    std::cerr << training.status().ToString() << "\n";
    return 1;
  }
  const auto& juggler = training->trained;

  // What-if sweep over the user parameters (within the trained region).
  TablePrinter table({"Examples", "Features", "Best schedule", "#Machines",
                      "Pred. time", "Pred. cost", "Actual time", "Accuracy"});
  double accuracy_sum = 0.0;
  int cases = 0;
  for (double es : {0.5, 0.75, 1.0}) {
    for (double fs : {0.5, 1.0}) {
      minispark::AppParams params = base;
      params.examples *= es;
      params.features *= fs;

      auto recs = juggler.Recommend(params, minispark::PaperCluster(1));
      if (!recs.ok() || recs->empty()) {
        std::cerr << "no recommendation\n";
        return 1;
      }
      // Pick the cheapest offered schedule.
      const core::Recommendation* best = &recs->front();
      for (const auto& r : *recs) {
        if (r.predicted_cost_machine_min < best->predicted_cost_machine_min) {
          best = &r;
        }
      }

      minispark::Engine engine{minispark::RunOptions{}};
      auto actual = engine.Run(workload->make(params),
                               minispark::PaperCluster(best->machines),
                               best->plan);
      if (!actual.ok()) {
        std::cerr << actual.status().ToString() << "\n";
        return 1;
      }
      const double acc = math::PredictionAccuracy(best->predicted_time_ms,
                                                  actual->duration_ms);
      accuracy_sum += acc;
      ++cases;
      table.AddRow({TablePrinter::Num(params.examples, 0),
                    TablePrinter::Num(params.features, 0),
                    "#" + std::to_string(best->schedule_id),
                    std::to_string(best->machines),
                    FormatTime(best->predicted_time_ms),
                    TablePrinter::Num(best->predicted_cost_machine_min),
                    FormatTime(actual->duration_ms),
                    TablePrinter::Percent(acc)});
    }
  }
  table.Print(std::cout);
  std::printf("\nMean prediction accuracy across the sweep: %s\n",
              TablePrinter::Percent(accuracy_sum / cases).c_str());
  std::printf("All predictions came from the offline models — zero new\n"
              "experiments were run to fill this table (only the validation\n"
              "runs in the 'Actual time' column).\n");
  return 0;
}
