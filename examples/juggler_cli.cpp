// juggler_cli: command-line front end covering the full deployment cycle.
//
//   juggler_cli train <workload> <model-file>
//       Runs the four offline stages and saves the trained model.
//   juggler_cli recommend <model-file> <examples> <features> [machine-GB]
//       Loads a model and prints the §5.5 recommendations — no experiments.
//   juggler_cli simulate <workload> <machines> [plan]
//       One actual (simulated) run with an explicit p(i)/u(i) plan, e.g.
//       `juggler_cli simulate svm 7 "p(2)"`; omit the plan for the
//       developer default.

#include <fstream>
#include <iostream>
#include <string>

#include "common/table_printer.h"
#include "common/units.h"
#include "core/juggler.h"
#include "core/serialization.h"
#include "minispark/engine.h"
#include "workloads/workloads.h"

using namespace juggler;  // NOLINT

namespace {

int Usage() {
  std::cerr <<
      "usage:\n"
      "  juggler_cli train <workload> <model-file>\n"
      "  juggler_cli recommend <model-file> <examples> <features> [machine-GB]\n"
      "  juggler_cli simulate <workload> <machines> [plan]\n"
      "workloads: lir lor pca rfc svm\n";
  return 2;
}

int Train(const std::string& name, const std::string& path) {
  auto workload = workloads::GetWorkload(name);
  if (!workload.ok()) {
    std::cerr << workload.status().ToString() << "\n";
    return 1;
  }
  core::JugglerConfig config;
  config.time_grid = core::TrainingGrid{
      {0.4 * workload->paper_params.examples, 0.7 * workload->paper_params.examples,
       workload->paper_params.examples},
      {0.4 * workload->paper_params.features, 0.7 * workload->paper_params.features,
       workload->paper_params.features},
      workload->paper_params.iterations};
  config.memory_reference = workload->paper_params;

  std::cout << "training '" << name << "' (four offline stages)...\n";
  auto training = core::TrainJuggler(name, workload->make, config);
  if (!training.ok()) {
    std::cerr << training.status().ToString() << "\n";
    return 1;
  }
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  if (auto st = core::SaveTrainedJuggler(training->trained, out); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  std::printf("saved %s: %zu schedule(s), memory factor %.3f, "
              "training cost %.1f machine-min\n",
              path.c_str(), training->trained.schedules().size(),
              training->trained.memory().memory_factor,
              training->costs.Total());
  return 0;
}

int Recommend(const std::string& path, double examples, double features,
              double machine_gb) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot read " << path << "\n";
    return 1;
  }
  auto trained = core::LoadTrainedJuggler(in);
  if (!trained.ok()) {
    std::cerr << trained.status().ToString() << "\n";
    return 1;
  }
  minispark::ClusterConfig machine = minispark::PaperCluster(1);
  machine.executor_memory_bytes = GiB(machine_gb);

  auto recs = trained->Recommend(
      minispark::AppParams{examples, features, 1}, machine);
  if (!recs.ok()) {
    std::cerr << recs.status().ToString() << "\n";
    return 1;
  }
  std::printf("%s @ examples=%g features=%g on %s machines:\n",
              trained->app_name().c_str(), examples, features,
              FormatBytes(machine.executor_memory_bytes).c_str());
  TablePrinter table({"Schedule", "Plan", "Cached size", "#Machines",
                      "Pred. time", "Pred. cost (machine min)"});
  for (const auto& r : *recs) {
    table.AddRow({"#" + std::to_string(r.schedule_id), r.plan.ToString(),
                  FormatBytes(r.predicted_bytes), std::to_string(r.machines),
                  FormatTime(r.predicted_time_ms),
                  TablePrinter::Num(r.predicted_cost_machine_min)});
  }
  table.Print(std::cout);
  return 0;
}

int Simulate(const std::string& name, int machines, const std::string& plan_text) {
  auto workload = workloads::GetWorkload(name);
  if (!workload.ok()) {
    std::cerr << workload.status().ToString() << "\n";
    return 1;
  }
  const auto app = workload->make(workload->paper_params);
  minispark::CachePlan plan = app.default_plan;
  if (!plan_text.empty()) {
    auto parsed = minispark::CachePlan::Parse(plan_text);
    if (!parsed.ok()) {
      std::cerr << parsed.status().ToString() << "\n";
      return 1;
    }
    plan = std::move(parsed).value();
  }
  minispark::Engine engine{minispark::RunOptions{}};
  auto r = engine.Run(app, minispark::PaperCluster(machines), plan);
  if (!r.ok()) {
    std::cerr << r.status().ToString() << "\n";
    return 1;
  }
  std::printf("%s with %s on %d machines: %s, %.1f machine-min\n",
              name.c_str(), plan.ToString().c_str(), machines,
              FormatTime(r->duration_ms).c_str(), r->CostMachineMinutes());
  std::printf("cache: %lld hits, %lld recomputes, %lld evictions, "
              "peak exec %s\n",
              static_cast<long long>(r->cache_hits),
              static_cast<long long>(r->cache_recomputes),
              static_cast<long long>(r->blocks_evicted),
              FormatBytes(r->peak_execution_bytes).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "train" && argc == 4) return Train(argv[2], argv[3]);
  if (command == "recommend" && (argc == 5 || argc == 6)) {
    return Recommend(argv[2], std::atof(argv[3]), std::atof(argv[4]),
                     argc == 6 ? std::atof(argv[5]) : 12.0);
  }
  if (command == "simulate" && (argc == 4 || argc == 5)) {
    return Simulate(argv[2], std::atoi(argv[3]), argc == 5 ? argv[4] : "");
  }
  return Usage();
}
