# Empty dependencies file for juggler_cli.
# This may be replaced when dependencies are built.
