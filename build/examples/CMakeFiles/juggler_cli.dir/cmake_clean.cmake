file(REMOVE_RECURSE
  "CMakeFiles/juggler_cli.dir/juggler_cli.cpp.o"
  "CMakeFiles/juggler_cli.dir/juggler_cli.cpp.o.d"
  "juggler_cli"
  "juggler_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/juggler_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
