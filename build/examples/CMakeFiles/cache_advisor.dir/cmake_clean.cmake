file(REMOVE_RECURSE
  "CMakeFiles/cache_advisor.dir/cache_advisor.cpp.o"
  "CMakeFiles/cache_advisor.dir/cache_advisor.cpp.o.d"
  "cache_advisor"
  "cache_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
