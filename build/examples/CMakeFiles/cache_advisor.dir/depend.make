# Empty dependencies file for cache_advisor.
# This may be replaced when dependencies are built.
