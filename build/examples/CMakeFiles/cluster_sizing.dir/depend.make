# Empty dependencies file for cluster_sizing.
# This may be replaced when dependencies are built.
