
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/cluster_sizing.cpp" "examples/CMakeFiles/cluster_sizing.dir/cluster_sizing.cpp.o" "gcc" "examples/CMakeFiles/cluster_sizing.dir/cluster_sizing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/juggler_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/juggler_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/juggler_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/minispark/CMakeFiles/juggler_minispark.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/juggler_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/juggler_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
