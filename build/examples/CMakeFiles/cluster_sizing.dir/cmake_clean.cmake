file(REMOVE_RECURSE
  "CMakeFiles/cluster_sizing.dir/cluster_sizing.cpp.o"
  "CMakeFiles/cluster_sizing.dir/cluster_sizing.cpp.o.d"
  "cluster_sizing"
  "cluster_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
