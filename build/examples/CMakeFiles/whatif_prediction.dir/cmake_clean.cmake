file(REMOVE_RECURSE
  "CMakeFiles/whatif_prediction.dir/whatif_prediction.cpp.o"
  "CMakeFiles/whatif_prediction.dir/whatif_prediction.cpp.o.d"
  "whatif_prediction"
  "whatif_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
