# Empty compiler generated dependencies file for whatif_prediction.
# This may be replaced when dependencies are built.
