# Empty compiler generated dependencies file for bench_fig13_size_prediction.
# This may be replaced when dependencies are built.
