file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_size_prediction.dir/bench_fig13_size_prediction.cpp.o"
  "CMakeFiles/bench_fig13_size_prediction.dir/bench_fig13_size_prediction.cpp.o.d"
  "bench_fig13_size_prediction"
  "bench_fig13_size_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_size_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
