file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_actual_runs.dir/bench_fig09_actual_runs.cpp.o"
  "CMakeFiles/bench_fig09_actual_runs.dir/bench_fig09_actual_runs.cpp.o.d"
  "bench_fig09_actual_runs"
  "bench_fig09_actual_runs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_actual_runs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
