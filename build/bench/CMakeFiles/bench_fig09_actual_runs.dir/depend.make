# Empty dependencies file for bench_fig09_actual_runs.
# This may be replaced when dependencies are built.
