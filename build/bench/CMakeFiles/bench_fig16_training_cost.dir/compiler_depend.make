# Empty compiler generated dependencies file for bench_fig16_training_cost.
# This may be replaced when dependencies are built.
