file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_workloads.dir/bench_table1_workloads.cpp.o"
  "CMakeFiles/bench_table1_workloads.dir/bench_table1_workloads.cpp.o.d"
  "bench_table1_workloads"
  "bench_table1_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
