file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_cluster_config.dir/bench_fig14_cluster_config.cpp.o"
  "CMakeFiles/bench_fig14_cluster_config.dir/bench_fig14_cluster_config.cpp.o.d"
  "bench_fig14_cluster_config"
  "bench_fig14_cluster_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_cluster_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
