# Empty dependencies file for bench_fig14_cluster_config.
# This may be replaced when dependencies are built.
