file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_svm_areas.dir/bench_fig02_svm_areas.cpp.o"
  "CMakeFiles/bench_fig02_svm_areas.dir/bench_fig02_svm_areas.cpp.o.d"
  "bench_fig02_svm_areas"
  "bench_fig02_svm_areas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_svm_areas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
