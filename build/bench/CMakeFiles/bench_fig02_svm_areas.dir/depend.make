# Empty dependencies file for bench_fig02_svm_areas.
# This may be replaced when dependencies are built.
