file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_schedules.dir/bench_table2_schedules.cpp.o"
  "CMakeFiles/bench_table2_schedules.dir/bench_table2_schedules.cpp.o.d"
  "bench_table2_schedules"
  "bench_table2_schedules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
