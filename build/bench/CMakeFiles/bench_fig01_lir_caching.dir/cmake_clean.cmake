file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_lir_caching.dir/bench_fig01_lir_caching.cpp.o"
  "CMakeFiles/bench_fig01_lir_caching.dir/bench_fig01_lir_caching.cpp.o.d"
  "bench_fig01_lir_caching"
  "bench_fig01_lir_caching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_lir_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
