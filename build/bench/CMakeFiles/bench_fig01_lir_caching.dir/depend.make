# Empty dependencies file for bench_fig01_lir_caching.
# This may be replaced when dependencies are built.
