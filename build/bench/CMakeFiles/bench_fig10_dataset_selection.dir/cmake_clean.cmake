file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_dataset_selection.dir/bench_fig10_dataset_selection.cpp.o"
  "CMakeFiles/bench_fig10_dataset_selection.dir/bench_fig10_dataset_selection.cpp.o.d"
  "bench_fig10_dataset_selection"
  "bench_fig10_dataset_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_dataset_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
