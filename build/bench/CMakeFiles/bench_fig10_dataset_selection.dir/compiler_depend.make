# Empty compiler generated dependencies file for bench_fig10_dataset_selection.
# This may be replaced when dependencies are built.
