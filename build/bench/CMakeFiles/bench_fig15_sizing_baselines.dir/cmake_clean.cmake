file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_sizing_baselines.dir/bench_fig15_sizing_baselines.cpp.o"
  "CMakeFiles/bench_fig15_sizing_baselines.dir/bench_fig15_sizing_baselines.cpp.o.d"
  "bench_fig15_sizing_baselines"
  "bench_fig15_sizing_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_sizing_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
