# Empty compiler generated dependencies file for bench_fig15_sizing_baselines.
# This may be replaced when dependencies are built.
