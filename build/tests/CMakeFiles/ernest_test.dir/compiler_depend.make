# Empty compiler generated dependencies file for ernest_test.
# This may be replaced when dependencies are built.
