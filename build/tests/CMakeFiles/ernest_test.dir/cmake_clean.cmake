file(REMOVE_RECURSE
  "CMakeFiles/ernest_test.dir/ernest_test.cc.o"
  "CMakeFiles/ernest_test.dir/ernest_test.cc.o.d"
  "ernest_test"
  "ernest_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ernest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
