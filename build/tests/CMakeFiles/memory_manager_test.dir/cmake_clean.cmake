file(REMOVE_RECURSE
  "CMakeFiles/memory_manager_test.dir/memory_manager_test.cc.o"
  "CMakeFiles/memory_manager_test.dir/memory_manager_test.cc.o.d"
  "memory_manager_test"
  "memory_manager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
