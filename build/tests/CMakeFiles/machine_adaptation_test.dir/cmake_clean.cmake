file(REMOVE_RECURSE
  "CMakeFiles/machine_adaptation_test.dir/machine_adaptation_test.cc.o"
  "CMakeFiles/machine_adaptation_test.dir/machine_adaptation_test.cc.o.d"
  "machine_adaptation_test"
  "machine_adaptation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_adaptation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
