file(REMOVE_RECURSE
  "CMakeFiles/sizing_baselines_test.dir/sizing_baselines_test.cc.o"
  "CMakeFiles/sizing_baselines_test.dir/sizing_baselines_test.cc.o.d"
  "sizing_baselines_test"
  "sizing_baselines_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sizing_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
