# Empty dependencies file for sizing_baselines_test.
# This may be replaced when dependencies are built.
