file(REMOVE_RECURSE
  "CMakeFiles/application_test.dir/application_test.cc.o"
  "CMakeFiles/application_test.dir/application_test.cc.o.d"
  "application_test"
  "application_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/application_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
