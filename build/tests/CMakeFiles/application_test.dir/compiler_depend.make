# Empty compiler generated dependencies file for application_test.
# This may be replaced when dependencies are built.
