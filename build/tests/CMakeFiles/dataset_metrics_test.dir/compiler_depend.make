# Empty compiler generated dependencies file for dataset_metrics_test.
# This may be replaced when dependencies are built.
