file(REMOVE_RECURSE
  "CMakeFiles/dataset_metrics_test.dir/dataset_metrics_test.cc.o"
  "CMakeFiles/dataset_metrics_test.dir/dataset_metrics_test.cc.o.d"
  "dataset_metrics_test"
  "dataset_metrics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
