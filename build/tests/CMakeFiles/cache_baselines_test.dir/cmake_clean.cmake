file(REMOVE_RECURSE
  "CMakeFiles/cache_baselines_test.dir/cache_baselines_test.cc.o"
  "CMakeFiles/cache_baselines_test.dir/cache_baselines_test.cc.o.d"
  "cache_baselines_test"
  "cache_baselines_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
