# Empty compiler generated dependencies file for minispark_extra_test.
# This may be replaced when dependencies are built.
