file(REMOVE_RECURSE
  "CMakeFiles/minispark_extra_test.dir/minispark_extra_test.cc.o"
  "CMakeFiles/minispark_extra_test.dir/minispark_extra_test.cc.o.d"
  "minispark_extra_test"
  "minispark_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minispark_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
