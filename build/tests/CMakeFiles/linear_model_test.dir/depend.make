# Empty dependencies file for linear_model_test.
# This may be replaced when dependencies are built.
