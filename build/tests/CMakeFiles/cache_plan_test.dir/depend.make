# Empty dependencies file for cache_plan_test.
# This may be replaced when dependencies are built.
