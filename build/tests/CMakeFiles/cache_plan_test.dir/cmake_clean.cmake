file(REMOVE_RECURSE
  "CMakeFiles/cache_plan_test.dir/cache_plan_test.cc.o"
  "CMakeFiles/cache_plan_test.dir/cache_plan_test.cc.o.d"
  "cache_plan_test"
  "cache_plan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
