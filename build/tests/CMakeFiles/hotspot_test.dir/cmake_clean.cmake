file(REMOVE_RECURSE
  "CMakeFiles/hotspot_test.dir/hotspot_test.cc.o"
  "CMakeFiles/hotspot_test.dir/hotspot_test.cc.o.d"
  "hotspot_test"
  "hotspot_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
