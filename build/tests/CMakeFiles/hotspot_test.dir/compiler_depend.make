# Empty compiler generated dependencies file for hotspot_test.
# This may be replaced when dependencies are built.
