file(REMOVE_RECURSE
  "CMakeFiles/recommender_test.dir/recommender_test.cc.o"
  "CMakeFiles/recommender_test.dir/recommender_test.cc.o.d"
  "recommender_test"
  "recommender_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recommender_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
