# Empty dependencies file for recommender_test.
# This may be replaced when dependencies are built.
