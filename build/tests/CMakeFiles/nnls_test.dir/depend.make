# Empty dependencies file for nnls_test.
# This may be replaced when dependencies are built.
