file(REMOVE_RECURSE
  "CMakeFiles/nnls_test.dir/nnls_test.cc.o"
  "CMakeFiles/nnls_test.dir/nnls_test.cc.o.d"
  "nnls_test"
  "nnls_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nnls_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
