file(REMOVE_RECURSE
  "libjuggler_workloads.a"
)
