
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/workloads.cc" "src/workloads/CMakeFiles/juggler_workloads.dir/workloads.cc.o" "gcc" "src/workloads/CMakeFiles/juggler_workloads.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/minispark/CMakeFiles/juggler_minispark.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/juggler_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
