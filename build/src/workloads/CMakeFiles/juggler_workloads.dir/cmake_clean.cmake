file(REMOVE_RECURSE
  "CMakeFiles/juggler_workloads.dir/workloads.cc.o"
  "CMakeFiles/juggler_workloads.dir/workloads.cc.o.d"
  "libjuggler_workloads.a"
  "libjuggler_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/juggler_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
