# Empty compiler generated dependencies file for juggler_workloads.
# This may be replaced when dependencies are built.
