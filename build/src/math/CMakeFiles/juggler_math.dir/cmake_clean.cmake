file(REMOVE_RECURSE
  "CMakeFiles/juggler_math.dir/linear_model.cc.o"
  "CMakeFiles/juggler_math.dir/linear_model.cc.o.d"
  "CMakeFiles/juggler_math.dir/nnls.cc.o"
  "CMakeFiles/juggler_math.dir/nnls.cc.o.d"
  "libjuggler_math.a"
  "libjuggler_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/juggler_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
