# Empty compiler generated dependencies file for juggler_math.
# This may be replaced when dependencies are built.
