file(REMOVE_RECURSE
  "libjuggler_math.a"
)
