# Empty dependencies file for juggler_minispark.
# This may be replaced when dependencies are built.
