file(REMOVE_RECURSE
  "CMakeFiles/juggler_minispark.dir/application.cc.o"
  "CMakeFiles/juggler_minispark.dir/application.cc.o.d"
  "CMakeFiles/juggler_minispark.dir/cache_plan.cc.o"
  "CMakeFiles/juggler_minispark.dir/cache_plan.cc.o.d"
  "CMakeFiles/juggler_minispark.dir/cluster.cc.o"
  "CMakeFiles/juggler_minispark.dir/cluster.cc.o.d"
  "CMakeFiles/juggler_minispark.dir/engine.cc.o"
  "CMakeFiles/juggler_minispark.dir/engine.cc.o.d"
  "CMakeFiles/juggler_minispark.dir/memory_manager.cc.o"
  "CMakeFiles/juggler_minispark.dir/memory_manager.cc.o.d"
  "libjuggler_minispark.a"
  "libjuggler_minispark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/juggler_minispark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
