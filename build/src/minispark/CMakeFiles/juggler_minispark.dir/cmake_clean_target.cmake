file(REMOVE_RECURSE
  "libjuggler_minispark.a"
)
