
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minispark/application.cc" "src/minispark/CMakeFiles/juggler_minispark.dir/application.cc.o" "gcc" "src/minispark/CMakeFiles/juggler_minispark.dir/application.cc.o.d"
  "/root/repo/src/minispark/cache_plan.cc" "src/minispark/CMakeFiles/juggler_minispark.dir/cache_plan.cc.o" "gcc" "src/minispark/CMakeFiles/juggler_minispark.dir/cache_plan.cc.o.d"
  "/root/repo/src/minispark/cluster.cc" "src/minispark/CMakeFiles/juggler_minispark.dir/cluster.cc.o" "gcc" "src/minispark/CMakeFiles/juggler_minispark.dir/cluster.cc.o.d"
  "/root/repo/src/minispark/engine.cc" "src/minispark/CMakeFiles/juggler_minispark.dir/engine.cc.o" "gcc" "src/minispark/CMakeFiles/juggler_minispark.dir/engine.cc.o.d"
  "/root/repo/src/minispark/memory_manager.cc" "src/minispark/CMakeFiles/juggler_minispark.dir/memory_manager.cc.o" "gcc" "src/minispark/CMakeFiles/juggler_minispark.dir/memory_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/juggler_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
