file(REMOVE_RECURSE
  "CMakeFiles/juggler_common.dir/status.cc.o"
  "CMakeFiles/juggler_common.dir/status.cc.o.d"
  "CMakeFiles/juggler_common.dir/table_printer.cc.o"
  "CMakeFiles/juggler_common.dir/table_printer.cc.o.d"
  "CMakeFiles/juggler_common.dir/units.cc.o"
  "CMakeFiles/juggler_common.dir/units.cc.o.d"
  "libjuggler_common.a"
  "libjuggler_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/juggler_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
