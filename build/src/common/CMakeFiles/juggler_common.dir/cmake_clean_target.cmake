file(REMOVE_RECURSE
  "libjuggler_common.a"
)
