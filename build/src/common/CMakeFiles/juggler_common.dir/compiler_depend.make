# Empty compiler generated dependencies file for juggler_common.
# This may be replaced when dependencies are built.
