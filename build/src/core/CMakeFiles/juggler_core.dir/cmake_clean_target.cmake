file(REMOVE_RECURSE
  "libjuggler_core.a"
)
