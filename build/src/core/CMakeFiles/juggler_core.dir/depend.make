# Empty dependencies file for juggler_core.
# This may be replaced when dependencies are built.
