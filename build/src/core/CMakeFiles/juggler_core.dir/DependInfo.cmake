
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dataset_metrics.cc" "src/core/CMakeFiles/juggler_core.dir/dataset_metrics.cc.o" "gcc" "src/core/CMakeFiles/juggler_core.dir/dataset_metrics.cc.o.d"
  "/root/repo/src/core/exec_time_model.cc" "src/core/CMakeFiles/juggler_core.dir/exec_time_model.cc.o" "gcc" "src/core/CMakeFiles/juggler_core.dir/exec_time_model.cc.o.d"
  "/root/repo/src/core/hotspot.cc" "src/core/CMakeFiles/juggler_core.dir/hotspot.cc.o" "gcc" "src/core/CMakeFiles/juggler_core.dir/hotspot.cc.o.d"
  "/root/repo/src/core/juggler.cc" "src/core/CMakeFiles/juggler_core.dir/juggler.cc.o" "gcc" "src/core/CMakeFiles/juggler_core.dir/juggler.cc.o.d"
  "/root/repo/src/core/machine_adaptation.cc" "src/core/CMakeFiles/juggler_core.dir/machine_adaptation.cc.o" "gcc" "src/core/CMakeFiles/juggler_core.dir/machine_adaptation.cc.o.d"
  "/root/repo/src/core/memory_calibration.cc" "src/core/CMakeFiles/juggler_core.dir/memory_calibration.cc.o" "gcc" "src/core/CMakeFiles/juggler_core.dir/memory_calibration.cc.o.d"
  "/root/repo/src/core/parameter_calibration.cc" "src/core/CMakeFiles/juggler_core.dir/parameter_calibration.cc.o" "gcc" "src/core/CMakeFiles/juggler_core.dir/parameter_calibration.cc.o.d"
  "/root/repo/src/core/recommender.cc" "src/core/CMakeFiles/juggler_core.dir/recommender.cc.o" "gcc" "src/core/CMakeFiles/juggler_core.dir/recommender.cc.o.d"
  "/root/repo/src/core/schedule.cc" "src/core/CMakeFiles/juggler_core.dir/schedule.cc.o" "gcc" "src/core/CMakeFiles/juggler_core.dir/schedule.cc.o.d"
  "/root/repo/src/core/serialization.cc" "src/core/CMakeFiles/juggler_core.dir/serialization.cc.o" "gcc" "src/core/CMakeFiles/juggler_core.dir/serialization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/minispark/CMakeFiles/juggler_minispark.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/juggler_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/juggler_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
