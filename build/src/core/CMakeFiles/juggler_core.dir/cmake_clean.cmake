file(REMOVE_RECURSE
  "CMakeFiles/juggler_core.dir/dataset_metrics.cc.o"
  "CMakeFiles/juggler_core.dir/dataset_metrics.cc.o.d"
  "CMakeFiles/juggler_core.dir/exec_time_model.cc.o"
  "CMakeFiles/juggler_core.dir/exec_time_model.cc.o.d"
  "CMakeFiles/juggler_core.dir/hotspot.cc.o"
  "CMakeFiles/juggler_core.dir/hotspot.cc.o.d"
  "CMakeFiles/juggler_core.dir/juggler.cc.o"
  "CMakeFiles/juggler_core.dir/juggler.cc.o.d"
  "CMakeFiles/juggler_core.dir/machine_adaptation.cc.o"
  "CMakeFiles/juggler_core.dir/machine_adaptation.cc.o.d"
  "CMakeFiles/juggler_core.dir/memory_calibration.cc.o"
  "CMakeFiles/juggler_core.dir/memory_calibration.cc.o.d"
  "CMakeFiles/juggler_core.dir/parameter_calibration.cc.o"
  "CMakeFiles/juggler_core.dir/parameter_calibration.cc.o.d"
  "CMakeFiles/juggler_core.dir/recommender.cc.o"
  "CMakeFiles/juggler_core.dir/recommender.cc.o.d"
  "CMakeFiles/juggler_core.dir/schedule.cc.o"
  "CMakeFiles/juggler_core.dir/schedule.cc.o.d"
  "CMakeFiles/juggler_core.dir/serialization.cc.o"
  "CMakeFiles/juggler_core.dir/serialization.cc.o.d"
  "libjuggler_core.a"
  "libjuggler_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/juggler_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
