file(REMOVE_RECURSE
  "libjuggler_baselines.a"
)
