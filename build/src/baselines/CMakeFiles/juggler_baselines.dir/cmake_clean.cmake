file(REMOVE_RECURSE
  "CMakeFiles/juggler_baselines.dir/cache_baselines.cc.o"
  "CMakeFiles/juggler_baselines.dir/cache_baselines.cc.o.d"
  "CMakeFiles/juggler_baselines.dir/ernest.cc.o"
  "CMakeFiles/juggler_baselines.dir/ernest.cc.o.d"
  "CMakeFiles/juggler_baselines.dir/sizing_baselines.cc.o"
  "CMakeFiles/juggler_baselines.dir/sizing_baselines.cc.o.d"
  "libjuggler_baselines.a"
  "libjuggler_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/juggler_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
