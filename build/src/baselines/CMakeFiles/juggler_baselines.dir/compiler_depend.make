# Empty compiler generated dependencies file for juggler_baselines.
# This may be replaced when dependencies are built.
