#include <cmath>
#include <string>
#include <string_view>
#include <vector>

#include "fuzz/harnesses.h"
#include "online/observation.h"

namespace juggler::fuzz {

int RunObservationDecoder(const uint8_t* data, size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  auto decoded = online::DecodeObservationBatch(bytes);
  if (!decoded.ok()) {
    JUGGLER_FUZZ_CHECK(!decoded.status().message().empty(),
                       "decoder errors carry a reason");
    return 0;
  }

  // Structural invariants every accepted batch must satisfy: the size math
  // that the decoder used to pre-validate the count must hold, and every
  // field must be within the documented bounds (the decoder promises callers
  // they never see an unbounded app name or a non-finite number).
  JUGGLER_FUZZ_CHECK(decoded->size() <= online::kMaxObservationsPerBatch,
                     "batch count respects the cap");
  size_t expected = online::kObservationBatchHeaderBytes;
  for (const online::Observation& o : *decoded) {
    JUGGLER_FUZZ_CHECK(!o.app.empty() && o.app.size() <= online::kMaxAppBytes,
                       "app length is bounded");
    JUGGLER_FUZZ_CHECK(std::isfinite(o.params.examples) &&
                           std::isfinite(o.params.features) &&
                           std::isfinite(o.value) && std::isfinite(o.predicted),
                       "decoded numbers are finite");
    expected += online::kObservationRecordFixedBytes + o.app.size();
  }
  JUGGLER_FUZZ_CHECK(expected == size,
                     "accepted batches are exactly their records");

  // Round-trip oracle (documented on DecodeObservationBatch): an accepted
  // batch re-encodes to the exact input bytes, and the re-encode decodes to
  // the same fields. A mismatch means the two codec directions disagree
  // about the format — the bug class this harness exists to catch.
  const std::string wire = online::EncodeObservationBatch(*decoded);
  JUGGLER_FUZZ_CHECK(wire == bytes, "re-encode reproduces the input bytes");
  auto again = online::DecodeObservationBatch(wire);
  JUGGLER_FUZZ_CHECK(again.ok(), "re-encoded batches decode");
  JUGGLER_FUZZ_CHECK(again->size() == decoded->size(),
                     "round-trip preserves the count");
  for (size_t i = 0; i < decoded->size(); ++i) {
    const online::Observation& a = (*decoded)[i];
    const online::Observation& b = (*again)[i];
    JUGGLER_FUZZ_CHECK(
        a.kind == b.kind && a.app == b.app && a.target == b.target &&
            a.params.examples == b.params.examples &&
            a.params.features == b.params.features &&
            a.params.iterations == b.params.iterations &&
            a.model_version == b.model_version && a.value == b.value &&
            a.predicted == b.predicted,
        "round-trip preserves every field");
  }
  return 0;
}

}  // namespace juggler::fuzz
