#include "fuzz/harnesses.h"

// Bridges libFuzzer to one harness body. Each fuzz_* target compiles this
// file with -DJUGGLER_FUZZ_ENTRY=<RunFunction>, so all four harnesses can
// also coexist in one plain binary (fuzz_replay, corpus_replay_test) without
// colliding over the LLVMFuzzerTestOneInput symbol.
#ifndef JUGGLER_FUZZ_ENTRY
#error "Compile with -DJUGGLER_FUZZ_ENTRY=<harness Run function>"
#endif

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return juggler::fuzz::JUGGLER_FUZZ_ENTRY(data, size);
}
