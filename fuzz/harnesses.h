#ifndef JUGGLER_FUZZ_HARNESSES_H_
#define JUGGLER_FUZZ_HARNESSES_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

/// \file
/// \brief Fuzz-harness bodies for every surface that parses untrusted bytes.
///
/// Each `Run*` function has the libFuzzer `LLVMFuzzerTestOneInput` contract
/// (arbitrary bytes in, 0 out, abort on an invariant violation) but lives in
/// a plain library with no fuzzer runtime, so the exact same code runs in
/// three places:
///
///  - `fuzz_*` libFuzzer binaries (clang, `-DJUGGLER_FUZZ=ON`,
///    `-fsanitize=fuzzer,address`) — the discovery loop;
///  - `fuzz_replay` — a dependency-free driver that replays saved inputs
///    (any compiler, any sanitizer) for crash reproduction and minimization;
///  - `corpus_replay_test` — a tier-1 ctest that replays every committed
///    corpus input, so each fuzz finding is a permanent regression test.
///
/// Harnesses must be deterministic per input and must not read the clock,
/// the environment, or any state a previous input could have left behind
/// (the model-registry fixture in RunRecommendServer is built once and then
/// only read).

namespace juggler::fuzz {

/// Feeds the bytes to net::HttpParser. The first input byte selects how the
/// rest is split across Append() calls (0 = one shot, otherwise chunks of
/// `(byte % 97) + 1` bytes), so framing across TCP segment boundaries is
/// part of the explored space. Checks: drained parsers keep their buffer
/// below the configured limits, poisoned parsers hold zero bytes, and every
/// error maps to 400/413/501.
int RunHttpParser(const uint8_t* data, size_t size);

/// Parses the bytes as a JSON document. Accepted documents are run through
/// the parse -> Dump -> reparse oracle: the writer's output must always
/// reparse, and a second Dump must be byte-identical (idempotence).
int RunJson(const uint8_t* data, size_t size);

/// Feeds the bytes to the model-artifact loader
/// (core::TrainedJugglerFromString — the exact path ModelRegistry::Refresh
/// uses for on-disk artifacts). Accepted artifacts are saved and reloaded:
/// the save of a loaded model must itself load, byte-stably.
int RunModelLoader(const uint8_t* data, size_t size);

/// Feeds the bytes to rpc::FrameDecoder (the shard tier's binary framing).
/// The first input byte selects the Append() chunking exactly like
/// RunHttpParser. Checks: decoded frames survive an encode/decode round
/// trip losslessly, poisoned decoders hold zero bytes, drained decoders
/// stay under header + max-payload, and every error carries a reason.
int RunRpcFrame(const uint8_t* data, size_t size);

/// Feeds the bytes to online::DecodeObservationBatch (the feedback
/// subsystem's wire format — the same decoder behind both the binary
/// /v1/observe body and the shard kObserve frame payload). Accepted batches
/// must satisfy the documented bounds (app length, finite numbers, count
/// cap, exact size math) and the round-trip oracle: re-encoding reproduces
/// the input bytes, and the re-encode decodes to identical fields.
int RunObservationDecoder(const uint8_t* data, size_t size);

/// End-to-end: the bytes are a client byte stream, parsed by HttpParser (an
/// in-memory transport — no sockets) and routed through a real
/// HttpRecommendServer (registry + service trained once at startup) via
/// HandleFast()/Handle(), exactly as the event loop would. Every response
/// must serialize to well-formed HTTP/1.1 framing with a known status code.
int RunRecommendServer(const uint8_t* data, size_t size);

/// Always-on invariant check: `assert` compiles away under NDEBUG (the
/// default RelWithDebInfo build), which would silently disable every oracle
/// above in exactly the builds CI fuzzes.
#define JUGGLER_FUZZ_CHECK(cond, what)                                   \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "JUGGLER_FUZZ_CHECK failed: %s (%s:%d)\n",    \
                   what, __FILE__, __LINE__);                            \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

}  // namespace juggler::fuzz

#endif  // JUGGLER_FUZZ_HARNESSES_H_
