#include <algorithm>
#include <string>

#include "fuzz/harnesses.h"
#include "rpc/frame.h"

namespace juggler::fuzz {

int RunRpcFrame(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  // Small payload cap: every input cheaply reaches the oversize rejection
  // edge; the committed corpus has frames on both sides of it.
  rpc::FrameDecoder::Limits limits;
  limits.max_payload_bytes = 1024;
  rpc::FrameDecoder decoder(limits);

  const size_t chunk = data[0] == 0 ? size : (data[0] % 97) + 1;
  const char* bytes = reinterpret_cast<const char*>(data) + 1;
  size_t remaining = size - 1;
  bool poisoned = false;
  while (true) {
    // Drain complete frames before feeding more, like the event loop does.
    while (true) {
      const rpc::FrameDecoder::Result result = decoder.Next();
      if (result.state == rpc::FrameDecoder::State::kReady) {
        JUGGLER_FUZZ_CHECK(
            rpc::IsKnownFrameType(static_cast<uint8_t>(result.frame.type)),
            "decoded frames carry a known type");
        JUGGLER_FUZZ_CHECK(
            result.frame.payload.size() <= limits.max_payload_bytes,
            "decoded payloads respect the limit");
        // Round-trip oracle: re-encoding a decoded frame and decoding that
        // must reproduce the frame exactly.
        const std::string wire = rpc::EncodeFrame(result.frame);
        JUGGLER_FUZZ_CHECK(
            wire.size() == rpc::kFrameHeaderBytes + result.frame.payload.size(),
            "encoded size is header + payload");
        rpc::FrameDecoder again(limits);
        again.Append(wire.data(), wire.size());
        const rpc::FrameDecoder::Result twice = again.Next();
        JUGGLER_FUZZ_CHECK(twice.state == rpc::FrameDecoder::State::kReady,
                           "re-encoded frames decode");
        JUGGLER_FUZZ_CHECK(twice.frame.type == result.frame.type &&
                               twice.frame.request_id ==
                                   result.frame.request_id &&
                               twice.frame.payload == result.frame.payload,
                           "round-trip is lossless");
        continue;
      }
      if (result.state == rpc::FrameDecoder::State::kError) {
        JUGGLER_FUZZ_CHECK(!result.error_detail.empty(),
                           "decoder errors carry a reason");
        JUGGLER_FUZZ_CHECK(decoder.failed(), "kError poisons the decoder");
        poisoned = true;
      }
      break;
    }
    if (poisoned) {
      JUGGLER_FUZZ_CHECK(decoder.buffered_bytes() == 0,
                         "poisoned decoder drops its buffer");
    } else {
      // A drained decoder holds at most one incomplete frame.
      JUGGLER_FUZZ_CHECK(
          decoder.buffered_bytes() <
              rpc::kFrameHeaderBytes + limits.max_payload_bytes,
          "drained decoder stays within its configured limits");
    }
    if (remaining == 0) break;
    const size_t n = std::min(chunk, remaining);
    decoder.Append(bytes, n);
    bytes += n;
    remaining -= n;
  }
  return 0;
}

}  // namespace juggler::fuzz
