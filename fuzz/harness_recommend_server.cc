#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "core/juggler.h"
#include "core/serialization.h"
#include "fuzz/harnesses.h"
#include "net/http.h"
#include "net/http_recommend_server.h"
#include "online/online_loop.h"
#include "service/model_registry.h"
#include "service/recommendation_service.h"
#include "workloads/workloads.h"

namespace juggler::fuzz {

namespace {

/// One registry + service + server built on first use and shared by every
/// input. The fixture is only read after construction (the one exception,
/// POST /v1/reload, re-scans a directory whose fingerprints never change —
/// a by-pointer reuse, not a reparse), so inputs stay independent.
struct ServerFixture {
  std::shared_ptr<service::ModelRegistry> registry;
  std::shared_ptr<service::RecommendationService> service;
  std::shared_ptr<online::OnlineJuggler> online;
  std::unique_ptr<net::HttpRecommendServer> server;

  ServerFixture() {
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "juggler_fuzz_recommend_registry";
    fs::create_directories(dir);
    const auto workload = workloads::GetWorkload("svm").value();
    core::JugglerConfig config;
    config.time_grid = core::TrainingGrid{{4000, 8000}, {1000, 2000}, 2};
    config.memory_reference = workload.paper_params;
    config.run_options.noise_sigma = 0.0;
    config.run_options.straggler_prob = 0.0;
    auto training = core::TrainJuggler("svm", workload.make, config);
    JUGGLER_FUZZ_CHECK(training.ok(), "fixture training succeeds");
    {
      std::ofstream out(dir / "svm.model");
      JUGGLER_FUZZ_CHECK(
          core::SaveTrainedJuggler(training->trained, out).ok(),
          "fixture artifact writes");
    }
    registry = std::make_shared<service::ModelRegistry>(dir.string());
    JUGGLER_FUZZ_CHECK(registry->Refresh().ok(), "fixture registry loads");
    service::RecommendationService::Options service_options;
    service_options.num_workers = 2;
    service_options.queue_capacity = 64;
    service = std::make_shared<service::RecommendationService>(
        registry, service_options);
    net::HttpRecommendServer::Options server_options;
    server_options.http.limits.max_header_bytes = 2048;
    server_options.http.limits.max_body_bytes = 4096;
    // Online ingest enabled (refit thread not started) so POST /v1/observe
    // reaches the JSON observation decoder instead of 503ing at the door.
    online = std::make_shared<online::OnlineJuggler>(
        registry, service, online::OnlineJuggler::Options{});
    server_options.online = online;
    server = std::make_unique<net::HttpRecommendServer>(registry, service,
                                                        server_options);
    // Start() is never called: requests are driven straight into
    // HandleFast()/Handle(), which is the in-memory transport.
  }
};

ServerFixture& Fixture() {
  static ServerFixture fixture;
  return fixture;
}

}  // namespace

int RunRecommendServer(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  ServerFixture& fixture = Fixture();

  net::HttpParser::Limits limits;
  limits.max_header_bytes = 2048;
  limits.max_body_bytes = 4096;
  net::HttpParser parser(limits);

  // First byte picks the Append() chunking, as in RunHttpParser, so the
  // whole request path sees segment-split framing too.
  const size_t chunk = data[0] == 0 ? size : (data[0] % 97) + 1;
  const char* bytes = reinterpret_cast<const char*>(data) + 1;
  size_t remaining = size - 1;
  while (true) {
    while (true) {
      const net::HttpParser::Result result = parser.Next();
      if (result.state == net::HttpParser::State::kError) {
        // The event loop answers with ErrorResponse-style framing and
        // closes; nothing further to route.
        return 0;
      }
      if (result.state == net::HttpParser::State::kNeedMore) break;
      const net::HttpRequest& request = result.request;
      // Exactly the event-loop contract: try the inline fast path, fall
      // through to the handler-pool path.
      auto fast = fixture.server->HandleFast(request);
      const net::HttpResponse response =
          fast.has_value() ? *std::move(fast)
                           : fixture.server->Handle(request);
      JUGGLER_FUZZ_CHECK(response.status >= 200 && response.status <= 599,
                         "route responses use a real HTTP status");
      const std::string wire =
          net::SerializeResponse(response, request.KeepAlive());
      JUGGLER_FUZZ_CHECK(wire.rfind("HTTP/1.1 ", 0) == 0,
                         "responses start with a status line");
      JUGGLER_FUZZ_CHECK(wire.find("\r\n\r\n") != std::string::npos,
                         "responses terminate their header section");
    }
    if (remaining == 0) break;
    const size_t n = std::min(chunk, remaining);
    parser.Append(bytes, n);
    bytes += n;
    remaining -= n;
  }
  return 0;
}

}  // namespace juggler::fuzz
