#include <algorithm>
#include <string>

#include "fuzz/harnesses.h"
#include "net/http.h"

namespace juggler::fuzz {

int RunHttpParser(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  // Small limits keep each input cheap while still exercising both the
  // header and body caps; the committed corpus includes inputs on both
  // sides of each edge.
  net::HttpParser::Limits limits;
  limits.max_header_bytes = 2048;
  limits.max_body_bytes = 4096;
  net::HttpParser parser(limits);

  const size_t chunk = data[0] == 0 ? size : (data[0] % 97) + 1;
  const char* bytes = reinterpret_cast<const char*>(data) + 1;
  size_t remaining = size - 1;
  bool poisoned = false;
  while (true) {
    // Drain everything that is ready before feeding more, like the event
    // loop does: pipelined requests come out one at a time.
    while (true) {
      const net::HttpParser::Result result = parser.Next();
      if (result.state == net::HttpParser::State::kReady) {
        const net::HttpRequest& request = result.request;
        (void)request.Path();
        (void)request.FindHeader("Content-Length");
        net::HttpResponse response =
            net::HttpResponse::Text(200, request.method);
        const std::string wire =
            net::SerializeResponse(response, request.KeepAlive());
        JUGGLER_FUZZ_CHECK(wire.rfind("HTTP/1.1 ", 0) == 0,
                           "responses start with a status line");
        continue;
      }
      if (result.state == net::HttpParser::State::kError) {
        JUGGLER_FUZZ_CHECK(result.error_status == 400 ||
                               result.error_status == 413 ||
                               result.error_status == 501,
                           "parser errors map to 400/413/501");
        JUGGLER_FUZZ_CHECK(!result.error_detail.empty(),
                           "parser errors carry a reason");
        poisoned = true;
      }
      break;
    }
    // A parser that is not mid-error never buffers more than one partial
    // request; a poisoned one must hold nothing at all (the connection is
    // about to close — buffering the rest of a hostile stream would be
    // unbounded memory).
    if (poisoned) {
      JUGGLER_FUZZ_CHECK(parser.buffered_bytes() == 0,
                         "poisoned parser drops its buffer");
    } else {
      JUGGLER_FUZZ_CHECK(
          parser.buffered_bytes() <=
              limits.max_header_bytes + 4 + limits.max_body_bytes,
          "drained parser stays within its configured limits");
    }
    if (remaining == 0) break;
    const size_t n = std::min(chunk, remaining);
    parser.Append(bytes, n);
    bytes += n;
    remaining -= n;
  }
  return 0;
}

}  // namespace juggler::fuzz
