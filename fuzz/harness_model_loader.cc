#include <string>

#include "core/serialization.h"
#include "fuzz/harnesses.h"

namespace juggler::fuzz {

int RunModelLoader(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  // The exact entry point ModelRegistry::Refresh() funnels every on-disk
  // `*.model` artifact through — the bytes here are what an attacker who
  // can write to the model directory (or corrupt a transfer) controls.
  auto loaded = core::TrainedJugglerFromString(text);
  if (!loaded.ok()) {
    JUGGLER_FUZZ_CHECK(!loaded.status().message().empty(),
                       "loader errors carry a diagnostic");
    return 0;
  }

  // Persistence oracle: anything the loader accepted must save and reload,
  // and the second save must equal the first (the registry's incremental
  // refresh depends on artifact bytes being stable).
  const std::string saved = core::TrainedJugglerToString(*loaded);
  auto reloaded = core::TrainedJugglerFromString(saved);
  JUGGLER_FUZZ_CHECK(reloaded.ok(), "a saved model must reload");
  JUGGLER_FUZZ_CHECK(core::TrainedJugglerToString(*reloaded) == saved,
                     "save -> load -> save is byte-stable");
  return 0;
}

}  // namespace juggler::fuzz
