#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "fuzz/harnesses.h"

// Replays saved fuzz inputs through a harness body without the libFuzzer
// runtime, so crashes reproduce (and minimized artifacts re-verify) under
// any compiler and sanitizer combination:
//
//   fuzz_replay <harness> <file>...
//
// where <harness> is one of http_parser, json, model_loader,
// recommend_server. Exits non-zero on the first unreadable file; an
// invariant violation aborts (same behavior as under the fuzzer).

namespace {

using HarnessFn = int (*)(const uint8_t*, size_t);

HarnessFn FindHarness(const char* name) {
  if (std::strcmp(name, "http_parser") == 0)
    return juggler::fuzz::RunHttpParser;
  if (std::strcmp(name, "json") == 0) return juggler::fuzz::RunJson;
  if (std::strcmp(name, "model_loader") == 0)
    return juggler::fuzz::RunModelLoader;
  if (std::strcmp(name, "observation") == 0)
    return juggler::fuzz::RunObservationDecoder;
  if (std::strcmp(name, "recommend_server") == 0)
    return juggler::fuzz::RunRecommendServer;
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <http_parser|json|model_loader|observation|"
                 "recommend_server> <file>...\n",
                 argv[0]);
    return 2;
  }
  const HarnessFn harness = FindHarness(argv[1]);
  if (harness == nullptr) {
    std::fprintf(stderr, "unknown harness: %s\n", argv[1]);
    return 2;
  }
  for (int i = 2; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", argv[i]);
      return 1;
    }
    std::ostringstream contents;
    contents << in.rdbuf();
    const std::string bytes = contents.str();
    std::fprintf(stderr, "replay %s (%zu bytes)\n", argv[i], bytes.size());
    harness(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
  }
  std::fprintf(stderr, "replayed %d input(s) cleanly\n", argc - 2);
  return 0;
}
