#include <string>

#include "fuzz/harnesses.h"
#include "net/json.h"

namespace juggler::fuzz {

int RunJson(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  const auto parsed = net::Json::Parse(text);
  if (!parsed.ok()) {
    JUGGLER_FUZZ_CHECK(!parsed.status().message().empty(),
                       "parse errors carry a diagnostic");
    return 0;
  }

  // Round-trip oracle. Dump() is not required to reproduce the input bytes
  // (whitespace, escapes and number spellings normalize), but the writer's
  // output must always reparse, and a second Dump must be byte-identical —
  // otherwise the serving tier could emit responses its own reader rejects.
  const std::string dumped = parsed->Dump();
  const auto reparsed = net::Json::Parse(dumped);
  JUGGLER_FUZZ_CHECK(reparsed.ok(), "Dump() output must reparse");
  JUGGLER_FUZZ_CHECK(reparsed->type() == parsed->type(),
                     "round trip preserves the value type");
  JUGGLER_FUZZ_CHECK(reparsed->Dump() == dumped, "Dump() is idempotent");

  // Drive the lookup helpers the request decoder uses; they must be total
  // on any parsed value.
  (void)parsed->Find("app");
  (void)parsed->NumberOr("examples", 0.0);
  (void)parsed->StringOr("app", "");
  (void)parsed->bool_value();
  (void)parsed->array_items();
  (void)parsed->object_items();
  return 0;
}

}  // namespace juggler::fuzz
